package mllb

import (
	"testing"
	"time"

	"lakego/internal/core"
	"lakego/internal/nn"
	"lakego/internal/offload"
	"lakego/internal/sched"
)

func boot(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestNewRejectsWrongShape(t *testing.T) {
	rt := boot(t)
	if _, err := New(rt, nn.New(1, 5, 2)); err == nil {
		t.Fatal("wrong input width accepted")
	}
}

func TestTrainFromSimLearns(t *testing.T) {
	net, acc, err := TrainFromSim(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if net == nil || acc < 0.75 {
		t.Fatalf("training accuracy = %.3f, want >= 0.75", acc)
	}
}

func TestBalancerPluggableIntoScheduler(t *testing.T) {
	rt := boot(t)
	net, _, err := TrainFromSim(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(rt, net)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sched.DefaultConfig()
	cfg.Seed = 9
	sim, err := sched.NewSim(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	sim.SpawnRandom(150, time.Millisecond, 30*time.Millisecond)
	st := sim.Run(time.Minute)
	if st.Completed != 150 {
		t.Fatalf("completed %d/150 with ML balancer", st.Completed)
	}
}

func TestClassifyPathsAgree(t *testing.T) {
	rt := boot(t)
	b, err := New(rt, nn.New(2, Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]float32, 32)
	for i := range batch {
		f := sched.Features{SrcQueueLen: i, DstQueueLen: 1, SrcLoad: float64(i), Imbalance: float64(i) / 32}
		batch[i] = f.Vector()
	}
	cpu, _ := b.ClassifyCPU(batch)
	lake, _, err := b.ClassifyLAKE(batch, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cpu {
		if cpu[i] != lake[i] {
			t.Fatalf("decision %d differs", i)
		}
	}
}

// Fig 10 / Table 3: crossover at 256 tasks.
func TestFig10Crossover(t *testing.T) {
	rt := boot(t)
	b, err := New(rt, nn.New(4, Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Sweep(b, offload.StandardBatches())
	if err != nil {
		t.Fatal(err)
	}
	got := offload.Crossover(pts)
	if got != 256 {
		for _, p := range pts {
			t.Logf("batch %4d: cpu=%v lake=%v sync=%v", p.Batch, p.CPU, p.LAKE, p.LAKESync)
		}
		t.Fatalf("crossover = %d, want 256 (Table 3)", got)
	}
}
