package faults

import (
	"bytes"
	"testing"
	"time"

	"lakego/internal/vtime"
)

func frame(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestNilPlaneIsNoOp(t *testing.T) {
	var p *Plane
	in := frame(32)
	out, delay := p.OnMessage(in)
	if delay != 0 || len(out) != 1 || &out[0][0] != &in[0] {
		t.Fatalf("nil plane altered the frame: %d copies, delay %v", len(out), delay)
	}
	if p.CrashNow() != CrashNone {
		t.Fatal("nil plane crashed")
	}
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("nil plane has stats: %+v", s)
	}
	p.SetMix(Mix{Drop: 1}) // must not panic
}

func TestZeroMixPassthroughDrawsNothing(t *testing.T) {
	clock := vtime.New()
	p := NewPlane(Mix{Seed: 1}, clock)
	in := frame(64)
	for i := 0; i < 100; i++ {
		out, delay := p.OnMessage(in)
		if delay != 0 || len(out) != 1 || &out[0][0] != &in[0] {
			t.Fatalf("zero mix altered the frame on message %d", i)
		}
		if p.CrashNow() != CrashNone {
			t.Fatalf("zero mix crashed on message %d", i)
		}
	}
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("zero mix counted faults: %+v", s)
	}
	if clock.Now() != 0 {
		t.Fatalf("zero mix advanced the clock to %v", clock.Now())
	}
	// The PRNG stream must be untouched: arm a deterministic mix now and
	// compare against a fresh plane with the same seed.
	armed := Mix{Drop: 0.5, Seed: 1}
	p.SetMix(armed)
	fresh := NewPlane(armed, vtime.New())
	for i := 0; i < 200; i++ {
		a, _ := p.OnMessage(in)
		b, _ := fresh.OnMessage(in)
		if (a == nil) != (b == nil) {
			t.Fatalf("PRNG stream diverged at message %d: zero-mix phase drew from it", i)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	mix := Mix{
		Drop: 0.1, Corrupt: 0.1, Duplicate: 0.1,
		Delay: 0.2, DelayMin: time.Microsecond, DelayMax: 50 * time.Microsecond,
		Crash: 0.05, Seed: 42,
	}
	run := func() (Stats, []int, time.Duration) {
		clock := vtime.New()
		p := NewPlane(mix, clock)
		var deliveries []int
		var total time.Duration
		in := frame(48)
		for i := 0; i < 500; i++ {
			out, delay := p.OnMessage(in)
			deliveries = append(deliveries, len(out))
			total += delay
			p.CrashNow()
		}
		return p.Stats(), deliveries, total
	}
	s1, d1, t1 := run()
	s2, d2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("same seed, different stats:\n%+v (%v)\n%+v (%v)", s1, t1, s2, t2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("same seed, different delivery at message %d: %d vs %d", i, d1[i], d2[i])
		}
	}
	if s1.Dropped == 0 || s1.Corrupted == 0 || s1.Duplicated == 0 || s1.Delayed == 0 || s1.Crashes() == 0 {
		t.Fatalf("expected every fault class to fire over 500 messages: %+v", s1)
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	const n = 20000
	p := NewPlane(Mix{Drop: 0.05, Seed: 7}, vtime.New())
	in := frame(16)
	for i := 0; i < n; i++ {
		p.OnMessage(in)
	}
	s := p.Stats()
	rate := float64(s.Dropped) / float64(n)
	if rate < 0.04 || rate > 0.06 {
		t.Fatalf("5%% drop rate produced %.4f over %d messages", rate, n)
	}
}

func TestCorruptionNeverAliasesInput(t *testing.T) {
	p := NewPlane(Mix{Corrupt: 1, Seed: 3}, vtime.New())
	in := frame(32)
	orig := append([]byte(nil), in...)
	for i := 0; i < 50; i++ {
		out, _ := p.OnMessage(in)
		if len(out) != 1 {
			t.Fatalf("corrupt-only mix delivered %d frames", len(out))
		}
		if !bytes.Equal(in, orig) {
			t.Fatal("OnMessage mutated the caller's frame")
		}
		if bytes.Equal(out[0], orig) {
			t.Fatalf("message %d: corrupted copy is identical to the input", i)
		}
	}
	if s := p.Stats(); s.Corrupted != 50 {
		t.Fatalf("Corrupted = %d, want 50", s.Corrupted)
	}
}

func TestDuplicateDeliversSameBytesTwice(t *testing.T) {
	p := NewPlane(Mix{Duplicate: 1, Seed: 4}, vtime.New())
	in := frame(24)
	out, _ := p.OnMessage(in)
	if len(out) != 2 {
		t.Fatalf("duplicate-only mix delivered %d frames, want 2", len(out))
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Fatal("duplicate copies differ")
	}
}

func TestDelayWithinBounds(t *testing.T) {
	min, max := 5*time.Microsecond, 20*time.Microsecond
	p := NewPlane(Mix{Delay: 1, DelayMin: min, DelayMax: max, Seed: 5}, vtime.New())
	in := frame(8)
	for i := 0; i < 200; i++ {
		_, d := p.OnMessage(in)
		if d < min || d > max {
			t.Fatalf("message %d: delay %v outside [%v, %v]", i, d, min, max)
		}
	}
	if s := p.Stats(); s.Delayed != 200 || s.DelayInjected < 200*min {
		t.Fatalf("delay accounting off: %+v", s)
	}
}

func TestCrashSplitsBeforeAndAfter(t *testing.T) {
	p := NewPlane(Mix{Crash: 1, Seed: 6}, vtime.New())
	var before, after int
	for i := 0; i < 400; i++ {
		switch p.CrashNow() {
		case CrashBeforeExec:
			before++
		case CrashAfterExec:
			after++
		default:
			t.Fatal("Crash=1 did not crash")
		}
	}
	if before == 0 || after == 0 {
		t.Fatalf("crash split degenerate: before=%d after=%d", before, after)
	}
	s := p.Stats()
	if int(s.CrashesBefore) != before || int(s.CrashesAfter) != after || int(s.Crashes()) != before+after {
		t.Fatalf("crash stats %+v disagree with observed %d/%d", s, before, after)
	}
}

func TestCrashPointString(t *testing.T) {
	cases := map[CrashPoint]string{
		CrashNone:       "no-crash",
		CrashBeforeExec: "crash-before-exec",
		CrashAfterExec:  "crash-after-exec",
	}
	for cp, want := range cases {
		if got := cp.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", cp, got, want)
		}
	}
}
