// Package faults is the injectable fault plane for the simulated
// kernel<->user channels: it decides, message by message, whether a frame is
// dropped, delayed, corrupted or duplicated, and whether lakeD crashes while
// serving a command.
//
// The paper's deployment story assumes a healthy lakeD and a clean Netlink
// socket; a production kernel client must instead survive a crashed, slow,
// or byzantine user-space daemon. The fault plane makes those failure modes
// reproducible: every decision comes from one seeded PRNG, delays are
// charged to the shared virtual clock (internal/vtime), and identical seeds
// replay identical fault schedules, so a chaos run is an experiment, not a
// dice roll.
//
// A nil *Plane is a valid no-op plane, and a Plane whose Mix has all rates
// at zero injects nothing and never touches the clock, so fault-free runs
// are bit-identical to runs with no plane attached.
package faults

import (
	"math/rand"
	"sync"
	"time"

	"lakego/internal/vtime"
)

// Mix is one fault configuration: per-message probabilities plus the delay
// distribution and the daemon-crash rate. All probabilities are in [0, 1].
type Mix struct {
	// Drop is the probability a frame is silently lost in the channel.
	Drop float64
	// Corrupt is the probability a frame is delivered with flipped bits.
	Corrupt float64
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Delay is the probability a frame is delayed; a delayed frame charges
	// a uniform draw from [DelayMin, DelayMax] of extra virtual time.
	Delay              float64
	DelayMin, DelayMax time.Duration
	// Crash is the per-served-command probability that lakeD crashes while
	// handling it (split evenly between crashing before execution — the
	// command is lost — and after execution — the response is lost).
	Crash float64
	// Seed initializes the plane's deterministic PRNG.
	Seed int64
}

// active reports whether any message fault can fire.
func (m Mix) active() bool {
	return m.Drop > 0 || m.Corrupt > 0 || m.Duplicate > 0 || m.Delay > 0
}

// Stats counts injected faults.
type Stats struct {
	Messages   int64 // frames offered to the plane
	Dropped    int64
	Corrupted  int64
	Duplicated int64
	Delayed    int64
	// DelayInjected is the total extra virtual time charged.
	DelayInjected time.Duration
	// Crashes counts injected daemon crashes (before + after execution).
	CrashesBefore, CrashesAfter int64
}

// Crashes is the total number of injected daemon crashes.
func (s Stats) Crashes() int64 { return s.CrashesBefore + s.CrashesAfter }

// CrashPoint says where in a command's lifetime an injected crash lands.
type CrashPoint int

// Crash points: none, before the command executes (the command is lost and
// must be redelivered), or after it executes but before the response is
// sent (the response is lost; redelivery must not re-execute).
const (
	CrashNone CrashPoint = iota
	CrashBeforeExec
	CrashAfterExec
)

func (c CrashPoint) String() string {
	switch c {
	case CrashBeforeExec:
		return "crash-before-exec"
	case CrashAfterExec:
		return "crash-after-exec"
	default:
		return "no-crash"
	}
}

// Plane is one seeded fault injector shared by the transport (message
// faults) and the daemon (crash faults). Safe for concurrent use; decisions
// are serialized through one PRNG so a single-threaded run is exactly
// reproducible from the seed.
type Plane struct {
	clock *vtime.Clock

	mu    sync.Mutex
	rng   *rand.Rand
	mix   Mix
	stats Stats
}

// NewPlane creates a fault plane charging delays to clock.
func NewPlane(mix Mix, clock *vtime.Clock) *Plane {
	return &Plane{clock: clock, rng: rand.New(rand.NewSource(mix.Seed)), mix: mix}
}

// SetMix swaps the fault configuration at runtime (the PRNG stream
// continues; the seed is not reset). Tests use it to heal or break a
// channel mid-run.
func (p *Plane) SetMix(mix Mix) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.mix = mix
	p.mu.Unlock()
}

// Mix returns the current fault configuration.
func (p *Plane) Mix() Mix {
	if p == nil {
		return Mix{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mix
}

// Stats snapshots the injected-fault counters.
func (p *Plane) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// OnMessage applies message faults to one frame about to enter a channel.
// It returns the frames actually delivered (none when dropped, two when
// duplicated, possibly corrupted copies) and the extra virtual-time delay
// to charge. The input frame is never aliased: corrupted copies are fresh
// allocations, and an untouched frame is passed through as-is.
//
// A zero-rate Mix draws nothing from the PRNG and returns the frame
// unchanged with zero delay, keeping fault-free runs bit-identical.
func (p *Plane) OnMessage(frame []byte) (deliver [][]byte, delay time.Duration) {
	if p == nil {
		return [][]byte{frame}, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.mix.active() {
		return [][]byte{frame}, 0
	}
	p.stats.Messages++
	if p.mix.Drop > 0 && p.rng.Float64() < p.mix.Drop {
		p.stats.Dropped++
		return nil, 0
	}
	out := frame
	if p.mix.Corrupt > 0 && p.rng.Float64() < p.mix.Corrupt {
		out = p.corruptLocked(frame)
		p.stats.Corrupted++
	}
	deliver = [][]byte{out}
	if p.mix.Duplicate > 0 && p.rng.Float64() < p.mix.Duplicate {
		deliver = append(deliver, out)
		p.stats.Duplicated++
	}
	if p.mix.Delay > 0 && p.rng.Float64() < p.mix.Delay {
		delay = p.mix.DelayMin
		if span := p.mix.DelayMax - p.mix.DelayMin; span > 0 {
			delay += time.Duration(p.rng.Int63n(int64(span) + 1))
		}
		if delay > 0 {
			p.stats.Delayed++
			p.stats.DelayInjected += delay
		}
	}
	return deliver, delay
}

// corruptLocked returns a copy of frame with 1-3 random bit flips (an empty
// frame is returned unchanged: there is nothing to flip).
func (p *Plane) corruptLocked(frame []byte) []byte {
	if len(frame) == 0 {
		return frame
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	for flips := 1 + p.rng.Intn(3); flips > 0; flips-- {
		cp[p.rng.Intn(len(cp))] ^= 1 << uint(p.rng.Intn(8))
	}
	return cp
}

// CrashNow decides whether the daemon crashes while serving the current
// command, and if so at which point.
func (p *Plane) CrashNow() CrashPoint {
	if p == nil {
		return CrashNone
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mix.Crash <= 0 || p.rng.Float64() >= p.mix.Crash {
		return CrashNone
	}
	if p.rng.Float64() < 0.5 {
		p.stats.CrashesBefore++
		return CrashBeforeExec
	}
	p.stats.CrashesAfter++
	return CrashAfterExec
}
