package loadgen

import (
	"fmt"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/kml"
	"lakego/internal/linnos"
	"lakego/internal/malware"
	"lakego/internal/mllb"
	"lakego/internal/nn"
	"lakego/internal/sched"
)

// Traffic classes. Each maps a tenant mix name to a batcher model with the
// same inference shape and cost profile as the corresponding LAKE
// subsystem, so macro load exercises the fleet with the per-item compute,
// staging sizes and CPU-fallback economics of the real workloads:
//
//   - linnos: the §7.1 I/O latency predictor (31-wide features, Base
//     variant network, calibrated kernel CPU cost);
//   - kml: the readahead tuner (10-wide, pattern-class output);
//   - mllb: the scheduler load balancer (sched feature vector, binary);
//   - malware: the KNN syscall-frequency detector, timing-only (the
//     macro layer cares about its distance-matrix FLOP load, not labels);
//   - ecryptfs: AES-GCM block cipher offload, timing-only with a 2 KiB
//     block staged per request — the bulk-data class that stresses
//     lakeShm and copy bandwidth rather than FLOPs.
//
// Networks are seeded per class, so forwards — and with them results
// files — are deterministic.

// Malware class shape: syscall-frequency vectors against a reference set.
const (
	malwareDim  = 64
	malwareRefs = 1024
)

// ecryptfs class shape: one 2 KiB block as 512 float32 lanes.
const ecryptfsLanes = 512

// MixNames lists the valid TenantClass.Mix values.
func MixNames() []string { return []string{"linnos", "kml", "mllb", "malware", "ecryptfs"} }

// classModel builds the batcher model for a tenant mix. The model name
// equals the mix name: classes sharing a mix share one queue per shard,
// exactly like kernel subsystems sharing a lakeD model context.
func classModel(mix string) (batcher.ModelConfig, error) {
	switch mix {
	case "linnos":
		net := nn.New(3, linnos.Base.Sizes()...)
		return batcher.ModelConfig{
			Name:       "linnos",
			InputWidth: linnos.InputWidth, OutputWidth: 2,
			MaxBatch:     linnos.MaxBatch,
			CPUPerItem:   linnos.Base.CPUInferCost(),
			FlopsPerItem: net.Flops(),
			Forward:      net.Forward,
		}, nil
	case "kml":
		net := nn.New(5, kml.Sizes()...)
		sizes := kml.Sizes()
		return batcher.ModelConfig{
			Name:       "kml",
			InputWidth: kml.InputWidth, OutputWidth: sizes[len(sizes)-1],
			MaxBatch:     kml.MaxBatch,
			CPUFixed:     2 * time.Microsecond,
			CPUPerItem:   cpuCost(net.Flops()),
			FlopsPerItem: net.Flops(),
			Forward:      net.Forward,
		}, nil
	case "mllb":
		net := nn.New(7, mllb.Sizes()...)
		return batcher.ModelConfig{
			Name:       "mllb",
			InputWidth: sched.VectorSize, OutputWidth: 2,
			MaxBatch:     mllb.MaxBatch,
			CPUFixed:     2 * time.Microsecond,
			CPUPerItem:   cpuCost(net.Flops()),
			FlopsPerItem: net.Flops(),
			Forward:      net.Forward,
		}, nil
	case "malware":
		// Timing-only: one query's distance matrix against the reference
		// set (3 FLOPs per dimension pair), the Fig 12 sweep's cost shape.
		flops := float64(3 * malwareDim * malwareRefs)
		return batcher.ModelConfig{
			Name:       "malware",
			InputWidth: malwareDim, OutputWidth: 1,
			MaxBatch:     1024,
			CPUFixed:     2 * time.Microsecond,
			CPUPerItem:   cpuCost(flops),
			FlopsPerItem: flops,
		}, nil
	case "ecryptfs":
		// Timing-only bulk-data class: ~10 FLOPs per AES-GCM byte keeps
		// the GPU cipher rate in Fig 14's hundreds-of-MB/s regime while
		// each request stages a whole block through lakeShm.
		flops := float64(10 * 4 * ecryptfsLanes)
		return batcher.ModelConfig{
			Name:       "ecryptfs",
			InputWidth: ecryptfsLanes, OutputWidth: 1,
			MaxBatch:     256,
			CPUFixed:     time.Microsecond,
			CPUPerItem:   cpuCost(flops),
			FlopsPerItem: flops,
		}, nil
	default:
		return batcher.ModelConfig{}, fmt.Errorf("unknown mix %q (want one of %v)", mix, MixNames())
	}
}

// cpuCost converts a per-item FLOP count to kernel-space CPU time at the
// malware study's calibrated 2.5 GFLOPS single-core rate.
func cpuCost(flops float64) time.Duration {
	return time.Duration(flops / (malware.CPUGFLOPS * 1e9) * float64(time.Second))
}

// synthItem writes a deterministic feature vector for one arrival into
// dst (already sized to the class's input width). Values never affect
// modeled timing — only staging and forward passes consume them — but
// varying them keeps the replay honest about marshaling real payloads.
func synthItem(dst []float32, seed int64, id int32, gen, draw uint32) {
	h := mix(seed, id, gen, draw, saltFeature)
	// Four varying lanes spread across the vector; the rest stay zero.
	n := len(dst)
	for k := 0; k < 4 && k < n; k++ {
		h = splitmix64(h)
		dst[(k*n)/4] = float32(h>>40) / float32(1<<24)
	}
}
