package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzScenarioConfig fuzzes the scenario-file parser. The properties:
// ParseScenario never panics; any accepted scenario's canonical form
// re-parses; and canonicalization is a fixed point (parse -> Canon ->
// parse -> Canon is byte-stable), so a scenario file checked into CI
// cannot drift meaning through a round-trip.
func FuzzScenarioConfig(f *testing.F) {
	for _, s := range Builtins() {
		seed, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","duration_ms":1,"clients":10,` +
		`"tenants":[{"name":"a","mix":"linnos","profile":"azure","fraction":1,"slo_p99_us":100}]}`))
	f.Add([]byte(`{"name":"x","duration_ms":1e99,"clients":-1,"tenants":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseScenario(data)
		if err != nil {
			return
		}
		c1, err := s.Canon()
		if err != nil {
			t.Fatalf("accepted scenario fails to canonicalize: %v", err)
		}
		s2, err := ParseScenario(c1)
		if err != nil {
			t.Fatalf("canonical form of an accepted scenario re-rejected: %v\n%s", err, c1)
		}
		c2, err := s2.Canon()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalization not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", c1, c2)
		}
	})
}
