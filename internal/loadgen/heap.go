package loadgen

import (
	"math"
	"time"
)

// The client population is deliberately not goroutines: a simulated client
// is a fixed-size record in a flat array plus an entry in a binary heap
// keyed by its next arrival time. Randomness is stateless — every draw is
// splitmix64 over (scenario seed, client id, generation, draw index) — so
// a client's schedule is a pure function of the seed, the heap pop order
// is a pure function of the schedules, and a million-client replay is
// byte-identical run over run, including under -race (one driver
// goroutine owns everything).

// client is one population member's mutable state.
type client struct {
	// next is the client's next scheduled arrival (virtual ns).
	next time.Duration
	// sessionEnd bounds the current connection; an arrival past it churns
	// the client (only meaningful with Scenario.Churn).
	sessionEnd time.Duration
	// gen counts reconnections: bumping it re-keys the client's random
	// stream and tenant-group assignment, modeling a genuinely new
	// connection from the same population slot.
	gen uint32
	// draws indexes the client's random stream within a generation.
	draws uint32
	// class is the index into Scenario.Tenants.
	class int32
	// group is the client's tenant group within its class.
	group int32
}

// eventHeap is a binary min-heap of client indices ordered by arrival
// time, ties broken by client index so heap order — and therefore the
// whole replay — is deterministic.
type eventHeap struct {
	clients []client
	idx     []int32 // heap of client indices
}

func (h *eventHeap) len() int { return len(h.idx) }

func (h *eventHeap) less(a, b int32) bool {
	ca, cb := &h.clients[a], &h.clients[b]
	if ca.next != cb.next {
		return ca.next < cb.next
	}
	return a < b
}

// init heapifies in O(n), the cheap way to seed a million first arrivals.
func (h *eventHeap) heapify() {
	for i := len(h.idx)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.idx)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && h.less(h.idx[r], h.idx[l]) {
			small = r
		}
		if !h.less(h.idx[small], h.idx[i]) {
			return
		}
		h.idx[i], h.idx[small] = h.idx[small], h.idx[i]
		i = small
	}
}

// peek returns the client index with the earliest arrival.
func (h *eventHeap) peek() int32 { return h.idx[0] }

// pop removes the root client: its window is over.
func (h *eventHeap) pop() {
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.idx = h.idx[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

// fix restores heap order after the root client's next arrival moved
// forward — the only mutation the replay loop performs.
func (h *eventHeap) fix() { h.siftDown(0) }

// splitmix64 is the stateless PRNG core: one avalanche of a 64-bit key.
// It is the same finalizer the consistent-hash ring uses; here it turns
// (seed, client, generation, draw) into an independent uniform stream
// with no per-client generator state at all.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds the draw coordinates into one splitmix key.
func mix(seed int64, clientID int32, gen, draw uint32, salt uint64) uint64 {
	x := uint64(seed) ^ salt
	x = splitmix64(x ^ uint64(uint32(clientID))<<1)
	x = splitmix64(x ^ uint64(gen)<<32 ^ uint64(draw))
	return x
}

// Draw salts: independent streams per purpose.
const (
	saltArrival = 0xA221_57A7_0000_0001
	saltAccept  = 0xA221_57A7_0000_0002
	saltSession = 0xA221_57A7_0000_0003
	saltGroup   = 0xA221_57A7_0000_0004
	saltFeature = 0xA221_57A7_0000_0005
)

// uniform maps a hash to (0,1]: never 0, so -log is finite.
func uniform(h uint64) float64 {
	return (float64(h>>11) + 1) / (1 << 53)
}

// expDur draws an exponential duration with the given mean.
func expDur(h uint64, mean time.Duration) time.Duration {
	d := -math.Log(uniform(h)) * float64(mean)
	if d >= math.MaxInt64 {
		return math.MaxInt64
	}
	return time.Duration(d)
}

// sinTurns is sin(2*pi*x), the diurnal carrier.
func sinTurns(x float64) float64 { return math.Sin(2 * math.Pi * x) }
