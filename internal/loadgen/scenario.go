// Package loadgen is the macro test layer: an open-loop, trace-driven load
// generator that replays a huge, churning client population against a full
// internal/fleet runtime on the virtual clock.
//
// The LAKE evaluation (§7.1, Table 4) replays rerated enterprise storage
// traces against the kernel/daemon boundary; internal/trace reproduces those
// generators and the micro-benchmarks replay them one subsystem at a time.
// What the micro-benches cannot answer is the production question: does the
// whole fleet — router, admission, batching, device pools, fault plane —
// hold its latency SLOs when millions of independent clients offer load the
// way a datacenter does? loadgen answers it with three deliberate choices:
//
//   - Open-loop arrivals. Clients issue requests on a schedule drawn from
//     the Table 4 inter-arrival distributions, modulated by diurnal and
//     burst curves — they do not wait for responses before issuing the next
//     request. A closed-loop driver slows down when the system slows down,
//     silently hiding overload (coordinated omission); an open-loop one
//     keeps offering load, so queueing delay lands in the measured latency
//     and overload shows up as SLO misses and sheds, not as a slower test.
//   - Clients as an event heap, not goroutines. A simulated client is ~40
//     bytes of state (next arrival, session end, generation) plus a
//     stateless hash-derived random stream; arrivals pop off a binary heap
//     in virtual-time order on one driver goroutine. That is what makes a
//     million-client population replay byte-identically under -race — and
//     cheaply enough for CI.
//   - SLO gating. Each tenant class carries a p99/p999 latency budget;
//     attainment (the fraction of *arrivals* — sheds count as misses —
//     served within budget) is the pass/fail signal, and a rate sweep
//     locates the capacity knee: the highest rate multiplier at which every
//     class still meets its SLO. Results serialize to the benchdiff /
//     `lakebench -results` JSON schema so CI gates macro regressions
//     exactly like micro-bench ones.
package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"lakego/internal/fleet"
	"lakego/internal/gpupool"
	"lakego/internal/trace"
)

// Scenario is one macro workload: a fleet shape plus a client population
// and its per-tenant traffic mix. The zero value is not runnable; start
// from a builtin (Smoke, Million, Storm) or ParseScenario, then Validate.
type Scenario struct {
	// Name labels the run; it prefixes every results group
	// ("Lakeload/<name>").
	Name string `json:"name"`
	// Seed drives every random draw in the replay (arrival schedules,
	// churn, feature synthesis). Fixed seed => byte-identical results.
	Seed int64 `json:"seed"`
	// DurationMS is the arrival window in virtual milliseconds: arrivals
	// are scheduled in [0, Duration); the tail drains past it.
	DurationMS float64 `json:"duration_ms"`
	// Clients is the simulated client population size.
	Clients int `json:"clients"`
	// Shards sizes the fleet (default 1).
	Shards int `json:"shards,omitempty"`
	// Devices is the per-shard GPU pool size (default 1).
	Devices int `json:"devices,omitempty"`
	// RouterPolicy places tenants on shards: round-robin,
	// least-outstanding, contention-aware or consistent-hash (default).
	RouterPolicy string `json:"router_policy,omitempty"`
	// RouterSeed seeds the router's ring/PRNG (default Seed).
	RouterSeed int64 `json:"router_seed,omitempty"`
	// RateMultiplier scales every class's offered rate; the knee sweep
	// ladders it. Default 1.
	RateMultiplier float64 `json:"rate_multiplier,omitempty"`
	// FleetMaxOutstanding caps fleet-wide in-flight requests for weighted
	// fair-share admission (0 = uncapped).
	FleetMaxOutstanding int `json:"fleet_max_outstanding,omitempty"`
	// MaxInflight bounds the driver's undelivered-request window: past it
	// the oldest request is waited for before the next arrival submits.
	// Default 4096.
	MaxInflight int `json:"max_inflight,omitempty"`

	// Batcher tunes each shard's batching subsystem.
	Batcher BatcherKnobs `json:"batcher,omitempty"`
	// Faults, when non-nil, arms each shard's deterministic fault plane.
	Faults *FaultKnobs `json:"faults,omitempty"`
	// Churn, when non-nil, gives clients finite sessions: a client whose
	// session expired is replaced (after a reconnect gap) by a fresh one
	// with a new random stream and possibly a new tenant group.
	Churn *ChurnKnobs `json:"churn,omitempty"`
	// Diurnal, when non-nil, modulates every class's rate sinusoidally.
	Diurnal *DiurnalKnobs `json:"diurnal,omitempty"`
	// Bursts multiply the rate inside [AtMS, AtMS+DurationMS) windows.
	Bursts []Burst `json:"bursts,omitempty"`

	// Tenants is the traffic mix; fractions must sum to <= 1 (the
	// remainder of the population is idle).
	Tenants []TenantClass `json:"tenants"`

	// Observer, when non-nil, is a per-replay hook factory: it is invoked
	// with the freshly booted fleet before arrivals start and may return a
	// RunObserver that receives virtual-time ticks during the drive and the
	// collected result at the end (cmd/lakeload's -live-slo attaches the
	// health plane this way). Never serialized — Canon, scenario files and
	// sweep rungs (which copy the scenario by value) carry it untouched.
	Observer func(f *fleet.Fleet) RunObserver `json:"-"`
}

// BatcherKnobs tunes the per-shard batcher. Zero fields keep loadgen
// defaults (not batcher defaults: the load generator wants a deep client
// depth so fleet admission, not the per-handle depth, is what sheds).
type BatcherKnobs struct {
	// MaxBatch is the target flush size in items (default 32).
	MaxBatch int `json:"max_batch,omitempty"`
	// MaxWaitUS is the deadline-flush bound in virtual µs (default 100).
	MaxWaitUS float64 `json:"max_wait_us,omitempty"`
	// ClientDepth bounds one tenant-group's outstanding requests on one
	// shard (default 1024 — deep, so shedding is an admission decision).
	ClientDepth int `json:"client_depth,omitempty"`
}

// FaultKnobs maps onto faults.Mix (probabilities in [0,1)).
type FaultKnobs struct {
	Seed      int64   `json:"seed,omitempty"`
	Drop      float64 `json:"drop,omitempty"`
	Corrupt   float64 `json:"corrupt,omitempty"`
	Duplicate float64 `json:"duplicate,omitempty"`
	Crash     float64 `json:"crash,omitempty"`
}

// ChurnKnobs parameterizes connection churn.
type ChurnKnobs struct {
	// MeanSessionMS is the exponential mean client session length.
	MeanSessionMS float64 `json:"mean_session_ms"`
	// ReconnectMS is the gap before the replacement client's first
	// arrival (default 1ms).
	ReconnectMS float64 `json:"reconnect_ms,omitempty"`
}

// DiurnalKnobs is the compressed day/night rate curve:
// rate(t) = base * (1 + Amplitude*sin(2*pi*t/Period)).
type DiurnalKnobs struct {
	PeriodMS  float64 `json:"period_ms"`
	Amplitude float64 `json:"amplitude"`
}

// Burst is one rate spike: inside [AtMS, AtMS+DurationMS) the offered
// rate is multiplied by Multiplier.
type Burst struct {
	AtMS       float64 `json:"at_ms"`
	DurationMS float64 `json:"duration_ms"`
	Multiplier float64 `json:"multiplier"`
}

// TenantClass is one slice of the population: a traffic type (which LAKE
// subsystem its requests exercise), an arrival profile, a share of the
// client population, fleet admission parameters and an SLO budget.
type TenantClass struct {
	// Name labels the class ("Lakeload/<scenario>/tenant=<name>").
	Name string `json:"name"`
	// Mix selects the modeled subsystem: linnos, kml, mllb, malware or
	// ecryptfs (see models.go for each class's inference shape).
	Mix string `json:"mix"`
	// Profile selects the Table 4 arrival family: azure, bing-i, cosmos.
	// The profile's AvgIOPS (times Rerate and the scenario multiplier) is
	// the class's aggregate offered rate, spread over its clients.
	Profile string `json:"profile"`
	// Fraction is this class's share of Scenario.Clients.
	Fraction float64 `json:"fraction"`
	// Rerate scales the profile's IOPS, the paper's §7.1 technique.
	// Default 1.
	Rerate float64 `json:"rerate,omitempty"`
	// Groups is how many fleet tenants (admission identities) the class's
	// clients share, the way many connections share one cgroup. Default 4.
	Groups int `json:"groups,omitempty"`
	// Weight is each group's fair-share weight (default 1).
	Weight int `json:"weight,omitempty"`
	// MaxOutstanding caps each group's in-flight requests (0 = uncapped).
	MaxOutstanding int `json:"max_outstanding,omitempty"`
	// QueueBound is the open-loop discipline: an arrival finding its
	// group already at this many undelivered requests is shed (counted,
	// never retried). Default 256.
	QueueBound int `json:"queue_bound,omitempty"`
	// SLOp99US / SLOp999US are the latency budgets in virtual µs: the
	// class meets its SLO when >= 99% of arrivals complete within
	// SLOp99US and >= 99.9% within SLOp999US (0 disables the p999 bound).
	SLOp99US  float64 `json:"slo_p99_us"`
	SLOp999US float64 `json:"slo_p999_us,omitempty"`
}

// Defaulted scenario knobs.
const (
	defaultMaxInflight = 4096
	defaultGroups      = 4
	defaultQueueBound  = 256
	defaultClientDepth = 1024
	defaultMaxBatch    = 32
	defaultMaxWaitUS   = 100.0
	defaultReconnectMS = 1.0
)

// ParseScenario decodes and validates a scenario file. Unknown fields are
// rejected so a typo'd knob cannot silently revert to a default.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadgen: bad scenario: %w", err)
	}
	// Trailing garbage after the object is a malformed file, not data.
	if dec.More() {
		return nil, fmt.Errorf("loadgen: bad scenario: trailing data after scenario object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate normalizes defaults in place and rejects unrunnable scenarios.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("loadgen: scenario needs a name")
	}
	if strings.ContainsAny(s.Name, "/ \t\n") {
		return fmt.Errorf("loadgen: scenario name %q may not contain '/' or spaces (it keys results groups)", s.Name)
	}
	if !(s.DurationMS > 0) || s.DurationMS > 3.6e6 {
		return fmt.Errorf("loadgen: duration_ms %v out of (0, 3.6e6]", s.DurationMS)
	}
	if s.Clients <= 0 || s.Clients > 64<<20 {
		return fmt.Errorf("loadgen: clients %d out of (0, 64Mi]", s.Clients)
	}
	if s.Shards < 0 || s.Shards > 64 {
		return fmt.Errorf("loadgen: shards %d out of [0, 64]", s.Shards)
	}
	if s.Shards == 0 {
		s.Shards = 1
	}
	if s.Devices < 0 || s.Devices > 64 {
		return fmt.Errorf("loadgen: devices %d out of [0, 64]", s.Devices)
	}
	if s.RouterPolicy == "" {
		s.RouterPolicy = "consistent-hash"
	}
	if _, err := gpupool.ParsePolicy(s.RouterPolicy); err != nil {
		return fmt.Errorf("loadgen: router_policy: %w", err)
	}
	if s.RouterSeed == 0 {
		s.RouterSeed = s.Seed
	}
	if s.RateMultiplier == 0 {
		s.RateMultiplier = 1
	}
	if !(s.RateMultiplier > 0) || s.RateMultiplier > 1e6 {
		return fmt.Errorf("loadgen: rate_multiplier %v out of (0, 1e6]", s.RateMultiplier)
	}
	if s.FleetMaxOutstanding < 0 {
		return fmt.Errorf("loadgen: fleet_max_outstanding %d negative", s.FleetMaxOutstanding)
	}
	if s.MaxInflight < 0 {
		return fmt.Errorf("loadgen: max_inflight %d negative", s.MaxInflight)
	}
	if s.MaxInflight == 0 {
		s.MaxInflight = defaultMaxInflight
	}
	if s.Batcher.MaxBatch < 0 || s.Batcher.MaxWaitUS < 0 || s.Batcher.ClientDepth < 0 {
		return fmt.Errorf("loadgen: negative batcher knob")
	}
	if s.Batcher.MaxBatch == 0 {
		s.Batcher.MaxBatch = defaultMaxBatch
	}
	if s.Batcher.MaxWaitUS == 0 {
		s.Batcher.MaxWaitUS = defaultMaxWaitUS
	}
	if s.Batcher.ClientDepth == 0 {
		s.Batcher.ClientDepth = defaultClientDepth
	}
	if f := s.Faults; f != nil {
		for _, p := range []float64{f.Drop, f.Corrupt, f.Duplicate, f.Crash} {
			if p < 0 || p >= 1 || p != p {
				return fmt.Errorf("loadgen: fault probability %v out of [0, 1)", p)
			}
		}
	}
	if c := s.Churn; c != nil {
		if !(c.MeanSessionMS > 0) {
			return fmt.Errorf("loadgen: churn mean_session_ms %v not positive", c.MeanSessionMS)
		}
		if c.ReconnectMS < 0 || c.ReconnectMS != c.ReconnectMS {
			return fmt.Errorf("loadgen: churn reconnect_ms %v negative", c.ReconnectMS)
		}
		if c.ReconnectMS == 0 {
			c.ReconnectMS = defaultReconnectMS
		}
	}
	if d := s.Diurnal; d != nil {
		if !(d.PeriodMS > 0) {
			return fmt.Errorf("loadgen: diurnal period_ms %v not positive", d.PeriodMS)
		}
		if !(d.Amplitude >= 0) || d.Amplitude >= 1 {
			return fmt.Errorf("loadgen: diurnal amplitude %v out of [0, 1)", d.Amplitude)
		}
	}
	for i, b := range s.Bursts {
		if !(b.AtMS >= 0) || !(b.DurationMS > 0) || !(b.Multiplier > 0) || b.Multiplier > 1e4 {
			return fmt.Errorf("loadgen: burst %d invalid (at=%v dur=%v mult=%v)", i, b.AtMS, b.DurationMS, b.Multiplier)
		}
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("loadgen: scenario needs at least one tenant class")
	}
	if len(s.Tenants) > 64 {
		return fmt.Errorf("loadgen: %d tenant classes, max 64", len(s.Tenants))
	}
	var frac float64
	seen := make(map[string]bool, len(s.Tenants))
	for i := range s.Tenants {
		c := &s.Tenants[i]
		if c.Name == "" {
			return fmt.Errorf("loadgen: tenant class %d needs a name", i)
		}
		if strings.ContainsAny(c.Name, "/= \t\n") {
			return fmt.Errorf("loadgen: tenant class name %q may not contain '/', '=' or spaces", c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("loadgen: duplicate tenant class %q", c.Name)
		}
		seen[c.Name] = true
		if _, err := classModel(c.Mix); err != nil {
			return fmt.Errorf("loadgen: tenant class %q: %w", c.Name, err)
		}
		if _, err := trace.ProfileByName(c.Profile); err != nil {
			return fmt.Errorf("loadgen: tenant class %q: %w", c.Name, err)
		}
		if !(c.Fraction > 0) || c.Fraction > 1 {
			return fmt.Errorf("loadgen: tenant class %q fraction %v out of (0, 1]", c.Name, c.Fraction)
		}
		frac += c.Fraction
		if c.Rerate == 0 {
			c.Rerate = 1
		}
		if !(c.Rerate > 0) || c.Rerate > 1e6 {
			return fmt.Errorf("loadgen: tenant class %q rerate %v out of (0, 1e6]", c.Name, c.Rerate)
		}
		if c.Groups < 0 || c.Groups > 4096 {
			return fmt.Errorf("loadgen: tenant class %q groups %d out of [0, 4096]", c.Name, c.Groups)
		}
		if c.Groups == 0 {
			c.Groups = defaultGroups
		}
		if c.Weight < 0 {
			return fmt.Errorf("loadgen: tenant class %q weight %d negative", c.Name, c.Weight)
		}
		if c.Weight == 0 {
			c.Weight = 1
		}
		if c.MaxOutstanding < 0 {
			return fmt.Errorf("loadgen: tenant class %q max_outstanding negative", c.Name)
		}
		if c.QueueBound < 0 {
			return fmt.Errorf("loadgen: tenant class %q queue_bound negative", c.Name)
		}
		if c.QueueBound == 0 {
			c.QueueBound = defaultQueueBound
		}
		if !(c.SLOp99US > 0) {
			return fmt.Errorf("loadgen: tenant class %q needs a positive slo_p99_us", c.Name)
		}
		if c.SLOp999US < 0 || c.SLOp999US != c.SLOp999US {
			return fmt.Errorf("loadgen: tenant class %q slo_p999_us %v negative", c.Name, c.SLOp999US)
		}
		if c.SLOp999US > 0 && c.SLOp999US < c.SLOp99US {
			return fmt.Errorf("loadgen: tenant class %q p999 budget %v below p99 budget %v", c.Name, c.SLOp999US, c.SLOp99US)
		}
	}
	if frac > 1.0001 {
		return fmt.Errorf("loadgen: tenant fractions sum to %v > 1", frac)
	}
	return nil
}

// Duration returns the arrival window as a virtual duration.
func (s *Scenario) Duration() time.Duration {
	return time.Duration(s.DurationMS * float64(time.Millisecond))
}

// classRate returns the class's aggregate offered rate in requests per
// virtual second at the scenario's multiplier (before diurnal/burst
// modulation).
func (s *Scenario) classRate(c *TenantClass) float64 {
	p, err := trace.ProfileByName(c.Profile)
	if err != nil {
		panic("loadgen: unvalidated scenario: " + err.Error()) // Validate gates this
	}
	return p.AvgIOPS * c.Rerate * s.RateMultiplier
}

// rateFactor is the time-varying rate modulation shared by every class:
// diurnal curve times any burst window covering t.
func (s *Scenario) rateFactor(t time.Duration) float64 {
	f := 1.0
	if d := s.Diurnal; d != nil {
		period := time.Duration(d.PeriodMS * float64(time.Millisecond))
		f *= 1 + d.Amplitude*sinTurns(float64(t)/float64(period))
	}
	for _, b := range s.Bursts {
		at := time.Duration(b.AtMS * float64(time.Millisecond))
		end := at + time.Duration(b.DurationMS*float64(time.Millisecond))
		if t >= at && t < end {
			f *= b.Multiplier
		}
	}
	return f
}

// peakFactor bounds rateFactor over the whole run, the thinning envelope.
func (s *Scenario) peakFactor() float64 {
	f := 1.0
	if s.Diurnal != nil {
		f *= 1 + s.Diurnal.Amplitude
	}
	// Bursts can overlap; the envelope is the product of all multipliers
	// that could coincide. Overlap detection by pairwise check is enough
	// at the validated burst counts.
	mult := 1.0
	for i, b := range s.Bursts {
		m := b.Multiplier
		for j, o := range s.Bursts {
			if i == j {
				continue
			}
			aStart, aEnd := b.AtMS, b.AtMS+b.DurationMS
			oStart, oEnd := o.AtMS, o.AtMS+o.DurationMS
			if oStart < aEnd && aStart < oEnd && j > i {
				m *= o.Multiplier
			}
		}
		if m > mult {
			mult = m
		}
	}
	return f * mult
}

// Canon returns the scenario's canonical JSON (sorted keys, normalized
// defaults), the fuzz round-trip anchor.
func (s *Scenario) Canon() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// sortedMultipliers copies and sorts a sweep ladder ascending.
func sortedMultipliers(ms []float64) []float64 {
	out := append([]float64(nil), ms...)
	sort.Float64s(out)
	return out
}
