package loadgen

import (
	"fmt"
	"strings"
)

// Builtin scenarios. Each is a ready-to-run macro workload; Run and
// cmd/lakeload validate (and so default-normalize) them first. Rerates
// follow the paper's §7.1 technique — the Table 4 profiles set each
// class's arrival *shape*, the rerate factor scales it to the offered
// load the scenario wants.

// Smoke is the CI scenario: 50k clients, a 20ms window, two shards, five
// tenant classes covering every mix, one mid-window burst. Small enough
// to replay (and knee-sweep) in seconds, big enough that batching,
// admission and the router all see real concurrency. Budgets are sized so
// the base rate passes while the sweep's top rungs shed hard.
func Smoke() *Scenario {
	return &Scenario{
		Name:       "smoke",
		Seed:       7,
		DurationMS: 50,
		Clients:    50_000,
		Shards:     2,
		Bursts:     []Burst{{AtMS: 20, DurationMS: 10, Multiplier: 2}},
		Tenants: []TenantClass{
			{Name: "linnos", Mix: "linnos", Profile: "azure", Fraction: 0.40, Rerate: 0.5,
				SLOp99US: 4000, SLOp999US: 10000},
			{Name: "kml", Mix: "kml", Profile: "bing-i", Fraction: 0.20, Rerate: 1,
				SLOp99US: 4000, SLOp999US: 10000},
			{Name: "mllb", Mix: "mllb", Profile: "cosmos", Fraction: 0.15, Rerate: 1.6,
				SLOp99US: 5000, SLOp999US: 12000},
			{Name: "malware", Mix: "malware", Profile: "cosmos", Fraction: 0.15, Rerate: 0.8,
				SLOp99US: 8000},
			{Name: "ecryptfs", Mix: "ecryptfs", Profile: "bing-i", Fraction: 0.10, Rerate: 0.5,
				SLOp99US: 8000},
		},
	}
}

// Million is the acceptance scenario: a 1,048,576-client population with
// connection churn, a diurnal curve and a burst, against four shards. Per
// client the rate is tiny — exactly the production shape where a huge
// idle-ish population still offers megascale aggregate load — and the
// whole thing replays deterministically in seconds because idle clients
// cost one heap pop each.
func Million() *Scenario {
	return &Scenario{
		Name:       "million",
		Seed:       42,
		DurationMS: 25,
		Clients:    1 << 20,
		Shards:     4,
		Churn:      &ChurnKnobs{MeanSessionMS: 10},
		Diurnal:    &DiurnalKnobs{PeriodMS: 25, Amplitude: 0.5},
		Bursts:     []Burst{{AtMS: 10, DurationMS: 5, Multiplier: 2}},
		Tenants: []TenantClass{
			{Name: "linnos", Mix: "linnos", Profile: "azure", Fraction: 0.45, Rerate: 2, Groups: 8,
				SLOp99US: 7000, SLOp999US: 14000},
			{Name: "kml", Mix: "kml", Profile: "bing-i", Fraction: 0.25, Rerate: 5, Groups: 8,
				SLOp99US: 7000, SLOp999US: 14000},
			{Name: "mllb", Mix: "mllb", Profile: "cosmos", Fraction: 0.15, Rerate: 6, Groups: 4,
				SLOp99US: 6000},
			{Name: "malware", Mix: "malware", Profile: "cosmos", Fraction: 0.10, Rerate: 4, Groups: 4,
				SLOp99US: 8000},
			{Name: "ecryptfs", Mix: "ecryptfs", Profile: "bing-i", Fraction: 0.05, Rerate: 3, Groups: 4,
				SLOp99US: 8000},
		},
	}
}

// Storm is the overload scenario: a deliberately over-committed burst
// against tight admission caps, for exercising the shed path and the
// fair-share invariants (no tenant starved, caps never exceeded). A
// heavyweight class with a big weight competes against two lightweights;
// the fleet cap forces fair-share decisions for most of the window.
func Storm() *Scenario {
	return &Scenario{
		Name:                "storm",
		Seed:                1234,
		DurationMS:          10,
		Clients:             20_000,
		Shards:              2,
		FleetMaxOutstanding: 96,
		MaxInflight:         512,
		Bursts:              []Burst{{AtMS: 2, DurationMS: 6, Multiplier: 10}},
		Tenants: []TenantClass{
			{Name: "heavy", Mix: "linnos", Profile: "azure", Fraction: 0.60, Rerate: 40,
				Groups: 2, Weight: 3, MaxOutstanding: 64, QueueBound: 64,
				SLOp99US: 2000},
			{Name: "light-a", Mix: "kml", Profile: "bing-i", Fraction: 0.20, Rerate: 40,
				Groups: 2, Weight: 1, MaxOutstanding: 32, QueueBound: 32,
				SLOp99US: 2000},
			{Name: "light-b", Mix: "mllb", Profile: "cosmos", Fraction: 0.20, Rerate: 40,
				Groups: 2, Weight: 1, MaxOutstanding: 32, QueueBound: 32,
				SLOp99US: 2000},
		},
	}
}

// Builtins returns the builtin scenarios in presentation order.
func Builtins() []*Scenario { return []*Scenario{Smoke(), Million(), Storm()} }

// BuiltinByName resolves a builtin scenario (case-insensitive).
func BuiltinByName(name string) (*Scenario, error) {
	for _, s := range Builtins() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	var names []string
	for _, s := range Builtins() {
		names = append(names, s.Name)
	}
	return nil, fmt.Errorf("loadgen: unknown builtin scenario %q (want one of %s)", name, strings.Join(names, ", "))
}
