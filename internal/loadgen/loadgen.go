package loadgen

import (
	"errors"
	"fmt"
	"math"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/core"
	"lakego/internal/faults"
	"lakego/internal/fleet"
	"lakego/internal/flightrec"
	"lakego/internal/gpupool"
)

// recorderRing sizes the fleet flight recorder's per-domain rings for a
// macro run: big enough that the stitched stage breakdown covers a
// representative slice of the replay even at high request counts.
const recorderRing = 1 << 15

// Run replays the scenario to completion against a freshly booted fleet
// and reports results. The replay is single-threaded over a deterministic
// event heap on the virtual clock, so a fixed-seed run produces
// byte-identical results (see Result.BenchJSON) run over run.
func Run(s *Scenario) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e, err := newEngine(s)
	if err != nil {
		return nil, err
	}
	defer e.fleet.Close()
	if err := e.drive(); err != nil {
		return nil, err
	}
	return e.collect(), nil
}

// RunObserver receives live callbacks from one replay: Tick fires at
// millisecond boundaries of virtual time as the drive advances (after the
// timer pump, so completions up to the tick are visible), Done once with
// the collected result. Observers run on the driver goroutine — anything
// slow here slows the replay's wall time, never its virtual results.
type RunObserver interface {
	Tick(at time.Duration)
	Done(r *Result)
}

// flight is one submitted-but-uncollected request.
type flight struct {
	p     *fleet.Pending
	class int32
	// base is backlog delay charged before enqueue: the routed shard's
	// clock at submit minus the scheduled arrival. Nonzero exactly when
	// the shard's service timeline had run ahead of the arrival timeline —
	// the open-loop overload signal a closed-loop driver never sees.
	base time.Duration
	// enq is the virtual enqueue instant (arrival + base); enq + MaxWait
	// is the request's deadline-flush instant, which the driver's timer
	// pump uses to deliver it no later than a daemon's max-wait timer
	// would have.
	enq time.Duration
}

// engine is one replay's mutable state. Everything is driven from a
// single goroutine; the only concurrency is inside the fleet (batch
// execution), which the virtual clock keeps deterministic.
type engine struct {
	s      *Scenario
	window time.Duration
	peak   float64

	fleet   *fleet.Fleet
	clients [][]*fleet.Client // [class][group] submission handles

	// Per-class constants.
	mixName []string
	width   []int
	meanGap []time.Duration // candidate inter-arrival mean at the thinning envelope
	counts  []int

	churnMean time.Duration
	reconnect time.Duration
	maxWait   time.Duration

	h        eventHeap
	inflight []flight
	head     int

	// Per-class tallies.
	arrivals  []int64
	shed      []int64
	failed    []int64
	completed []int64
	samples   [][]int64 // sojourn ns per completed request
	churned   int64

	obs     RunObserver
	obsLast time.Duration
}

func newEngine(s *Scenario) (*engine, error) {
	policy, err := gpupool.ParsePolicy(s.RouterPolicy)
	if err != nil {
		return nil, err
	}
	rcfg := core.Config{
		NumDevices:         s.Devices,
		NumShards:          s.Shards,
		RouterPolicy:       policy,
		RouterSeed:         s.RouterSeed,
		PoolSeed:           s.Seed,
		FlightRecorderSize: recorderRing,
	}
	if f := s.Faults; f != nil {
		rcfg.Faults = &faults.Mix{
			Seed: f.Seed, Drop: f.Drop, Corrupt: f.Corrupt,
			Duplicate: f.Duplicate, Crash: f.Crash,
		}
	}
	bcfg := batcher.Config{
		MaxBatch: s.Batcher.MaxBatch,
		MaxWait:  time.Duration(s.Batcher.MaxWaitUS * float64(time.Microsecond)),
		// Linger 0: deadline flushes happen on the first Wait, with no
		// wall-clock window — scheduling slack must not shape a replay.
		Linger:      0,
		ClientDepth: s.Batcher.ClientDepth,
	}
	fl, err := fleet.New(fleet.Config{
		Runtime:        rcfg,
		Batcher:        bcfg,
		MaxOutstanding: s.FleetMaxOutstanding,
	})
	if err != nil {
		return nil, err
	}

	e := &engine{
		s:         s,
		window:    s.Duration(),
		peak:      s.peakFactor(),
		fleet:     fl,
		clients:   make([][]*fleet.Client, len(s.Tenants)),
		mixName:   make([]string, len(s.Tenants)),
		width:     make([]int, len(s.Tenants)),
		meanGap:   make([]time.Duration, len(s.Tenants)),
		counts:    make([]int, len(s.Tenants)),
		arrivals:  make([]int64, len(s.Tenants)),
		shed:      make([]int64, len(s.Tenants)),
		failed:    make([]int64, len(s.Tenants)),
		completed: make([]int64, len(s.Tenants)),
		samples:   make([][]int64, len(s.Tenants)),
		maxWait:   bcfg.MaxWait,
	}
	if c := s.Churn; c != nil {
		e.churnMean = time.Duration(c.MeanSessionMS * float64(time.Millisecond))
		e.reconnect = time.Duration(c.ReconnectMS * float64(time.Millisecond))
	}

	// Register each mix's model once, in MixNames order (map iteration
	// must not decide registration order in a deterministic replay).
	need := make(map[string]int)
	for i := range s.Tenants {
		need[s.Tenants[i].Mix] = 0
	}
	for _, m := range MixNames() {
		if _, ok := need[m]; !ok {
			continue
		}
		mc, err := classModel(m)
		if err != nil {
			fl.Close()
			return nil, err
		}
		if err := fl.RegisterModel(mc); err != nil {
			fl.Close()
			return nil, err
		}
		need[m] = mc.InputWidth
	}

	// Tenant groups: the class's clients share Groups fleet admission
	// identities, the way many connections share one cgroup. Creation
	// order (class, then group) fixes placement order.
	for ci := range s.Tenants {
		tc := &s.Tenants[ci]
		e.mixName[ci] = tc.Mix
		e.width[ci] = need[tc.Mix]
		e.clients[ci] = make([]*fleet.Client, tc.Groups)
		for g := 0; g < tc.Groups; g++ {
			t := fl.Tenant(fmt.Sprintf("%s:g%d", tc.Name, g), fleet.TenantConfig{
				Weight:         tc.Weight,
				MaxOutstanding: tc.MaxOutstanding,
			})
			e.clients[ci][g] = fl.Client(t.Name())
		}
	}

	e.buildPopulation()
	if s.Observer != nil {
		e.obs = s.Observer(fl)
	}
	return e, nil
}

// buildPopulation sizes each class's slice of the client array, draws
// every client's group, session and first arrival, and heapifies the
// ones that arrive inside the window.
func (e *engine) buildPopulation() {
	s := e.s
	total := 0
	for ci := range s.Tenants {
		n := int(s.Tenants[ci].Fraction * float64(s.Clients))
		e.counts[ci] = n
		total += n
		if n > 0 {
			// Spread the class's aggregate rate over its clients; candidate
			// arrivals are drawn at the thinning envelope rate.
			perClient := s.classRate(&s.Tenants[ci]) / float64(n)
			e.meanGap[ci] = time.Duration(float64(time.Second) / (perClient * e.peak))
		}
	}
	e.h.clients = make([]client, total)
	e.h.idx = make([]int32, 0, total)
	id := int32(0)
	for ci := range s.Tenants {
		groups := uint64(s.Tenants[ci].Groups)
		for k := 0; k < e.counts[ci]; k++ {
			c := &e.h.clients[id]
			c.class = int32(ci)
			c.group = int32(mix(s.Seed, id, 0, 0, saltGroup) % groups)
			c.sessionEnd = math.MaxInt64
			if e.churnMean > 0 {
				c.sessionEnd = expDur(mix(s.Seed, id, 0, 0, saltSession), e.churnMean)
			}
			c.next = e.nextArrival(id, c, 0)
			if c.next < e.window {
				e.h.idx = append(e.h.idx, id)
			}
			id++
		}
	}
	e.h.heapify()
}

// nextArrival draws the client's next arrival after from, by thinning: a
// candidate Poisson stream at the envelope rate, each candidate accepted
// with probability rateFactor(t)/peak — the standard nonhomogeneous
// Poisson construction, and here also the trick that keeps a diurnal
// curve or a burst from needing any per-client state. Returns the window
// end when the client never arrives again.
func (e *engine) nextArrival(id int32, c *client, from time.Duration) time.Duration {
	t := from
	for {
		c.draws++
		t += expDur(mix(e.s.Seed, id, c.gen, c.draws, saltArrival), e.meanGap[c.class])
		if t >= e.window || t < from { // t < from: duration overflow
			return e.window
		}
		c.draws++
		if uniform(mix(e.s.Seed, id, c.gen, c.draws, saltAccept))*e.peak <= e.s.rateFactor(t) {
			return t
		}
	}
}

// drive pops arrivals in virtual-time order until the window closes for
// every client, then drains the in-flight tail.
func (e *engine) drive() error {
	for e.h.len() > 0 {
		id := e.h.peek()
		c := &e.h.clients[id]
		at := c.next
		// Timer pump: a daemon's max-wait timer delivers any batch whose
		// oldest request's deadline precedes this arrival. Waiting here
		// drives that same deadline flush while the shard clock is still
		// at the deadline — without it, a low-rate class's requests would
		// sit queued until the next same-model submission (or the drain)
		// finally drives the flush, measuring multi-millisecond sojourns
		// that no real timer-equipped system would produce.
		for e.head < len(e.inflight) && e.inflight[e.head].enq+e.maxWait <= at {
			e.completeOldest()
		}
		if e.obs != nil && at-e.obsLast >= time.Millisecond {
			e.obsLast = at
			e.obs.Tick(at)
		}
		if at > c.sessionEnd {
			e.churn(id, c, at)
			continue
		}
		if err := e.arrive(id, c, at); err != nil {
			return err
		}
		c.next = e.nextArrival(id, c, at)
		if c.next >= e.window {
			e.h.pop()
		} else {
			e.h.fix()
		}
	}
	for e.head < len(e.inflight) {
		e.completeOldest()
	}
	return nil
}

// churn replaces a client whose session lapsed: a new generation re-keys
// its random stream and group. The replacement's clock starts at the
// later of the missed arrival and session end + reconnect gap, keeping
// popped arrivals monotone.
func (e *engine) churn(id int32, c *client, at time.Duration) {
	e.churned++
	start := c.sessionEnd + e.reconnect
	if at > start {
		start = at
	}
	c.gen++
	c.draws = 0
	groups := uint64(e.s.Tenants[c.class].Groups)
	c.group = int32(mix(e.s.Seed, id, c.gen, 0, saltGroup) % groups)
	c.sessionEnd = start + expDur(mix(e.s.Seed, id, c.gen, 0, saltSession), e.churnMean)
	c.next = e.nextArrival(id, c, start)
	if c.next >= e.window {
		e.h.pop()
	} else {
		e.h.fix()
	}
}

// arrive is the open-loop discipline for one scheduled arrival: shed if
// the client's group is already at its queue bound, otherwise advance the
// routed shard's clock to the arrival instant and submit. Sheds and
// admission rejections are counted, never retried — the arrival already
// happened; pretending it didn't is how coordinated omission starts.
func (e *engine) arrive(id int32, c *client, at time.Duration) error {
	ci := c.class
	e.arrivals[ci]++
	tc := &e.s.Tenants[ci]
	cl := e.clients[ci][c.group]
	if cl.Tenant().Outstanding() >= int64(tc.QueueBound) {
		e.shed[ci]++
		return nil
	}
	sh, err := cl.Route()
	if err != nil {
		return err
	}
	// Shard clock = max(service backlog, arrival instant). When the shard
	// is backlogged AdvanceTo is a no-op and base picks up the backlog
	// delay, charged to this request from its scheduled arrival.
	now := sh.Clock().AdvanceTo(at)
	base := now - at
	item := make([]float32, e.width[ci])
	synthItem(item, e.s.Seed, id, c.gen, c.draws)
	p, err := cl.Submit(e.mixName[ci], [][]float32{item})
	if errors.Is(err, batcher.ErrBackpressure) {
		e.shed[ci]++
		return nil
	}
	if err != nil {
		return err
	}
	e.inflight = append(e.inflight, flight{p: p, class: ci, base: base, enq: at + base})
	if len(e.inflight)-e.head > e.s.MaxInflight {
		e.completeOldest()
	}
	return nil
}

// completeOldest waits for the oldest in-flight request (FIFO keeps
// collection order deterministic; Wait drives any pending deadline flush)
// and records its sojourn: backlog delay before enqueue plus
// enqueue-to-delivery latency, both virtual.
func (e *engine) completeOldest() {
	fl := e.inflight[e.head]
	e.inflight[e.head] = flight{}
	e.head++
	if e.head >= 8192 && e.head*2 >= len(e.inflight) {
		n := copy(e.inflight, e.inflight[e.head:])
		e.inflight = e.inflight[:n]
		e.head = 0
	}
	if _, err := fl.p.Wait(); err != nil {
		e.failed[fl.class]++
		return
	}
	e.completed[fl.class]++
	e.samples[fl.class] = append(e.samples[fl.class], int64(fl.base+fl.p.Latency()))
}

// collect folds the replay into a Result.
func (e *engine) collect() *Result {
	s := e.s
	r := &Result{
		Scenario:       s,
		Shards:         s.Shards,
		Clients:        len(e.h.clients),
		Churned:        e.churned,
		VirtualElapsed: e.fleet.VirtualElapsed(),
	}
	for ci := range s.Tenants {
		tc := &s.Tenants[ci]
		cr := ClassResult{
			Name:      tc.Name,
			Mix:       tc.Mix,
			Clients:   e.counts[ci],
			Arrivals:  e.arrivals[ci],
			Completed: e.completed[ci],
			Shed:      e.shed[ci],
			Failed:    e.failed[ci],
		}
		for _, cl := range e.clients[ci] {
			if p := cl.Tenant().PeakOutstanding(); p > cr.PeakOutstanding {
				cr.PeakOutstanding = p
			}
		}
		cr.measure(e.samples[ci], tc)
		r.Arrivals += cr.Arrivals
		r.Completed += cr.Completed
		r.Shed += cr.Shed
		r.Failed += cr.Failed
		r.Classes = append(r.Classes, cr)
	}
	if e.window > 0 {
		r.OfferedPerSec = float64(r.Arrivals) / e.window.Seconds()
	}
	if r.VirtualElapsed > 0 {
		r.GoodputPerSec = float64(r.Completed) / r.VirtualElapsed.Seconds()
	}
	if r.Arrivals > 0 {
		var within int64
		for _, c := range r.Classes {
			within += c.WithinP99
		}
		r.Attainment = float64(within) / float64(r.Arrivals)
	}
	st := e.fleet.Stats()
	r.Placements, r.Reroutes, r.Rejects = st.Placements, st.Reroutes, st.Rejects
	if rec := e.fleet.Recorder(); rec != nil {
		r.Stages = flightrec.MeasureStages(flightrec.Stitch(rec.Snapshot("lakeload")).Timelines)
	}
	if e.obs != nil {
		e.obs.Done(r)
	}
	return r
}
