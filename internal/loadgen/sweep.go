package loadgen

import (
	"fmt"
)

// The knee sweep: replay the same scenario at an ascending ladder of rate
// multipliers and find the capacity knee — the highest offered rate at
// which every tenant class still meets its SLO. This is the open-loop
// answer to "how much can the fleet take": a closed-loop sweep's
// throughput curve bends gently as the driver self-throttles, while the
// open-loop curve holds attainment near 100% until queueing goes
// super-linear and attainment falls off a cliff. The knee is where the
// cliff starts, and the flightrec stage breakdown at the first failing
// rung says which stage (queue, exec, copy, boundary) put it there.

// SweepPoint is one rung of the multiplier ladder.
type SweepPoint struct {
	Multiplier float64
	Result     *Result
}

// SweepResult is a completed knee search.
type SweepResult struct {
	Scenario *Scenario
	Points   []SweepPoint
	// Knee is the last multiplier (ascending) whose replay met every SLO;
	// 0 if even the lowest rung failed.
	Knee float64
	// KneeOffered is the offered rate at the knee in req/s.
	KneeOffered float64
	// FirstFailing is the lowest failing multiplier, 0 if none failed.
	FirstFailing float64
}

// Sweep replays the scenario once per multiplier (each scaled on top of
// the scenario's own RateMultiplier) and locates the knee. Multipliers
// are sorted ascending; each rung is an independent fixed-seed replay, so
// the whole sweep is deterministic.
func Sweep(s *Scenario, multipliers []float64) (*SweepResult, error) {
	if len(multipliers) == 0 {
		return nil, fmt.Errorf("loadgen: sweep needs at least one multiplier")
	}
	// Normalize first: the rungs scale the scenario's *effective* base
	// multiplier, which defaults to 1 only after validation.
	if err := s.Validate(); err != nil {
		return nil, err
	}
	ladder := sortedMultipliers(multipliers)
	for _, m := range ladder {
		if !(m > 0) {
			return nil, fmt.Errorf("loadgen: sweep multiplier %v not positive", m)
		}
	}
	sw := &SweepResult{Scenario: s}
	for _, m := range ladder {
		rung := *s
		rung.RateMultiplier = s.RateMultiplier * m
		r, err := Run(&rung)
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep x%g: %w", m, err)
		}
		sw.Points = append(sw.Points, SweepPoint{Multiplier: m, Result: r})
		if r.SLOMet() {
			if sw.FirstFailing == 0 { // knee is before the first failure
				sw.Knee = m
				sw.KneeOffered = r.OfferedPerSec
			}
		} else if sw.FirstFailing == 0 {
			sw.FirstFailing = m
		}
	}
	return sw, nil
}

// groups adds the knee group to a benchdiff benchmark map.
func (sw *SweepResult) groups(into map[string]map[string]float64) {
	g := map[string]float64{
		"points":                   float64(len(sw.Points)),
		"knee_multiplier":          sw.Knee,
		"knee_offered_req_per_s":   sw.KneeOffered,
		"first_failing_multiplier": sw.FirstFailing,
	}
	into["Lakeload/"+sw.Scenario.Name+"/knee"] = g
}

// Summary renders the sweep as an attainment-vs-rate table.
func (sw *SweepResult) Summary() string {
	out := fmt.Sprintf("knee sweep %s: %d points\n", sw.Scenario.Name, len(sw.Points))
	out += fmt.Sprintf("  %10s %14s %12s %14s %6s\n", "multiplier", "offered_req/s", "attainment", "goodput_req/s", "slo")
	for _, p := range sw.Points {
		verdict := "MET"
		if !p.Result.SLOMet() {
			verdict = "MISSED"
		}
		out += fmt.Sprintf("  %10.3g %14.0f %11.3f%% %14.0f %6s\n",
			p.Multiplier, p.Result.OfferedPerSec, 100*p.Result.Attainment,
			p.Result.GoodputPerSec, verdict)
	}
	switch {
	case sw.Knee == 0:
		out += "  no rung met every SLO\n"
	case sw.FirstFailing == 0:
		out += fmt.Sprintf("  knee beyond x%g (%.0f req/s): every rung met every SLO\n", sw.Knee, sw.KneeOffered)
	default:
		out += fmt.Sprintf("  knee at x%g (%.0f req/s); first failing rung x%g\n", sw.Knee, sw.KneeOffered, sw.FirstFailing)
	}
	return out
}
