package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// runOrFatal replays a scenario, failing the test on any engine error.
func runOrFatal(t *testing.T, s *Scenario) *Result {
	t.Helper()
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run(%s): %v", s.Name, err)
	}
	return r
}

func TestSmokeScenarioReplays(t *testing.T) {
	r := runOrFatal(t, Smoke())
	if r.Arrivals == 0 {
		t.Fatal("smoke scenario produced no arrivals")
	}
	if r.Completed == 0 {
		t.Fatal("smoke scenario completed nothing")
	}
	if r.Stages.Calls == 0 {
		t.Fatal("no flightrec stage breakdown: recorder produced no completed timelines")
	}
	if r.Stages.PerCallNS <= 0 || r.Stages.ExecNS <= 0 {
		t.Fatalf("degenerate stage means: %+v", r.Stages)
	}
	for _, c := range r.Classes {
		if c.Arrivals == 0 {
			t.Errorf("class %s saw no arrivals", c.Name)
		}
		if c.Completed > 0 && c.P99 <= 0 {
			t.Errorf("class %s completed %d but p99=%v", c.Name, c.Completed, c.P99)
		}
	}
	if got := r.Arrivals - r.Completed - r.Shed - r.Failed; got != 0 {
		t.Errorf("arrival accounting leaks: arrivals=%d completed=%d shed=%d failed=%d (off by %d)",
			r.Arrivals, r.Completed, r.Shed, r.Failed, got)
	}
}

// TestSmokeDeterministic pins the fixed-seed byte-identical contract on
// the CI scenario: two full replays, two identical results files.
func TestSmokeDeterministic(t *testing.T) {
	a, b := runOrFatal(t, Smoke()), runOrFatal(t, Smoke())
	ja, err := BenchJSON("det", []*Result{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := BenchJSON("det", []*Result{b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("fixed-seed smoke replays differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", ja, jb)
	}
}

// TestMillionDeterministic is the acceptance criterion: a fixed-seed
// 1M-client scenario replays deterministically — two runs, byte-identical
// results JSON — while reporting SLO attainment and a stage breakdown.
func TestMillionDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("million-client replay skipped in -short")
	}
	a, b := runOrFatal(t, Million()), runOrFatal(t, Million())
	if a.Clients < 1<<20-len(a.Classes) {
		t.Fatalf("population rounded too far: %d clients", a.Clients)
	}
	if a.Arrivals == 0 || a.Completed == 0 {
		t.Fatalf("million scenario inert: arrivals=%d completed=%d", a.Arrivals, a.Completed)
	}
	if a.Churned == 0 {
		t.Fatal("churn enabled but no client churned")
	}
	if a.Stages.Calls == 0 {
		t.Fatal("no flightrec stage breakdown")
	}
	ja, err := BenchJSON("det", []*Result{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := BenchJSON("det", []*Result{b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("fixed-seed million-client replays produced different results JSON")
	}
}

// TestStormAdmissionInvariants drives the overload burst scenario and
// asserts the fleet admission invariants hold under open-loop saturation:
// per-tenant caps are never exceeded (peak outstanding is the witness),
// backpressure actually fired, and no tenant class was starved.
func TestStormAdmissionInvariants(t *testing.T) {
	s := Storm()
	r := runOrFatal(t, s)
	if r.Shed == 0 {
		t.Fatal("storm scenario shed nothing: overload never hit the admission plane")
	}
	if r.Rejects == 0 {
		t.Fatal("storm scenario saw no fleet admission rejects")
	}
	for i, c := range r.Classes {
		cap := int64(s.Tenants[i].MaxOutstanding)
		if cap > 0 && c.PeakOutstanding > cap {
			t.Errorf("class %s exceeded its per-tenant cap: peak %d > cap %d",
				c.Name, c.PeakOutstanding, cap)
		}
		if c.PeakOutstanding == 0 {
			t.Errorf("class %s never had a request in flight", c.Name)
		}
		// Work-conserving fair share: even the low-weight classes must
		// complete work through the storm — nobody starves.
		if c.Completed == 0 {
			t.Errorf("class %s starved: %d arrivals, 0 completed", c.Name, c.Arrivals)
		}
	}
}

func TestChurnReassignsClients(t *testing.T) {
	s := Smoke()
	s.Churn = &ChurnKnobs{MeanSessionMS: 2}
	r := runOrFatal(t, s)
	if r.Churned == 0 {
		t.Fatal("2ms mean sessions over a 20ms window churned nobody")
	}
}

// TestBurstRaisesArrivals checks the rate modulation plumbing end to end:
// the same scenario with a burst window must offer strictly more load.
func TestBurstRaisesArrivals(t *testing.T) {
	base := Smoke()
	base.Bursts = nil
	quiet := runOrFatal(t, base)
	bursty := Smoke() // has a 3x burst over 4 of 20 ms
	loud := runOrFatal(t, bursty)
	if loud.Arrivals <= quiet.Arrivals {
		t.Fatalf("burst did not raise offered load: %d arrivals with burst vs %d without",
			loud.Arrivals, quiet.Arrivals)
	}
}

func TestDiurnalTroughLowersArrivals(t *testing.T) {
	base := Smoke()
	base.Bursts = nil
	flat := runOrFatal(t, base)
	dipped := Smoke()
	dipped.Bursts = nil
	// Second half-period of a 40ms sinusoid: the 20ms window sits entirely
	// in the rising lobe... use a trough instead: negative lobe by phase.
	// A full period inside the window keeps the mean at 1 but thinning
	// against a 0.9 amplitude envelope still reduces accepted arrivals
	// only at the trough; compare against amplitude 0 to keep it simple.
	dipped.Diurnal = &DiurnalKnobs{PeriodMS: 40, Amplitude: 0.9}
	d := runOrFatal(t, dipped)
	// The window covers the positive lobe (sin >= 0 on [0, 20ms) of a 40ms
	// period), so arrivals must *rise*; the check is that modulation did
	// something, deterministically.
	if d.Arrivals <= flat.Arrivals {
		t.Fatalf("diurnal positive lobe did not raise arrivals: %d vs flat %d", d.Arrivals, flat.Arrivals)
	}
}

func TestRateSweepFindsKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rung sweep skipped in -short")
	}
	s := Smoke()
	sw, err := Sweep(s, []float64{8, 0.5, 2}) // unsorted on purpose
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 3 {
		t.Fatalf("want 3 sweep points, got %d", len(sw.Points))
	}
	for i := 1; i < len(sw.Points); i++ {
		if sw.Points[i].Multiplier <= sw.Points[i-1].Multiplier {
			t.Fatal("sweep rungs not sorted ascending")
		}
		if sw.Points[i].Result.Arrivals <= sw.Points[i-1].Result.Arrivals {
			t.Errorf("offered load not monotone over rungs: x%g -> %d arrivals, x%g -> %d",
				sw.Points[i-1].Multiplier, sw.Points[i-1].Result.Arrivals,
				sw.Points[i].Multiplier, sw.Points[i].Result.Arrivals)
		}
	}
	if sw.Knee != 0 && sw.FirstFailing != 0 && sw.Knee >= sw.FirstFailing {
		t.Fatalf("knee x%g not below first failing rung x%g", sw.Knee, sw.FirstFailing)
	}
}

func TestParseScenarioRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	good, err := json.Marshal(Smoke())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseScenario(good); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	if _, err := ParseScenario([]byte(`{"name":"x","duration_ms":1,"clients":10,"typo_knob":3,` +
		`"tenants":[{"name":"a","mix":"linnos","profile":"azure","fraction":1,"slo_p99_us":100}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseScenario(append(append([]byte{}, good...), []byte("{}")...)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestValidateNormalizesAndRejects(t *testing.T) {
	s := Smoke()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.RouterPolicy != "consistent-hash" || s.MaxInflight != defaultMaxInflight {
		t.Fatalf("defaults not normalized: policy=%q max_inflight=%d", s.RouterPolicy, s.MaxInflight)
	}
	if s.Tenants[0].Groups != defaultGroups || s.Tenants[0].QueueBound != defaultQueueBound {
		t.Fatalf("tenant defaults not normalized: %+v", s.Tenants[0])
	}
	bad := []func(*Scenario){
		func(s *Scenario) { s.Name = "has space" },
		func(s *Scenario) { s.DurationMS = 0 },
		func(s *Scenario) { s.Clients = 0 },
		func(s *Scenario) { s.RouterPolicy = "nope" },
		func(s *Scenario) { s.RateMultiplier = -1 },
		func(s *Scenario) { s.Tenants = nil },
		func(s *Scenario) { s.Tenants[0].Mix = "nope" },
		func(s *Scenario) { s.Tenants[0].Profile = "nope" },
		func(s *Scenario) { s.Tenants[0].Fraction = 0 },
		func(s *Scenario) { s.Tenants[0].Fraction = 0.9; s.Tenants[1].Fraction = 0.9 },
		func(s *Scenario) { s.Tenants[0].SLOp99US = 0 },
		func(s *Scenario) { s.Tenants[0].SLOp999US = s.Tenants[0].SLOp99US / 2 },
		func(s *Scenario) { s.Tenants[1].Name = s.Tenants[0].Name },
		func(s *Scenario) { s.Tenants[0].Name = "a/b" },
		func(s *Scenario) { s.Diurnal = &DiurnalKnobs{PeriodMS: 10, Amplitude: 1.5} },
		func(s *Scenario) { s.Bursts = []Burst{{AtMS: 1, DurationMS: 0, Multiplier: 2}} },
		func(s *Scenario) { s.Faults = &FaultKnobs{Drop: 1.5} },
		func(s *Scenario) { s.Churn = &ChurnKnobs{MeanSessionMS: -1} },
	}
	for i, mutate := range bad {
		s := Smoke()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad scenario %d validated", i)
		}
	}
}

// TestEventHeapOrdersArrivals unit-tests the replay's core data
// structure with the engine's exact discipline — peek the root, advance
// it, fix or pop — asserting pops come out in nondecreasing time order.
func TestEventHeapOrdersArrivals(t *testing.T) {
	const horizon = 16 * time.Millisecond
	h := eventHeap{clients: make([]client, 64)}
	for i := range h.clients {
		// Deterministic scatter with deliberate ties.
		h.clients[i].next = time.Duration(i*37%16) * time.Millisecond
		h.idx = append(h.idx, int32(i))
	}
	h.heapify()
	last := time.Duration(-1)
	pops := 0
	for h.len() > 0 {
		id := h.peek()
		c := &h.clients[id]
		if c.next < last {
			t.Fatalf("heap order violated: %v after %v", c.next, last)
		}
		last = c.next
		pops++
		c.next += time.Duration(id%5+1) * time.Millisecond
		if c.next >= horizon {
			h.pop()
		} else {
			h.fix()
		}
	}
	if pops < len(h.clients) {
		t.Fatalf("only %d pops for %d clients", pops, len(h.clients))
	}
}

// TestStatelessStreamsIndependent sanity-checks the splitmix64 draw
// construction: distinct salts and draw indices decorrelate, and the
// uniform map never returns 0 (the -log singularity).
func TestStatelessStreamsIndependent(t *testing.T) {
	seen := make(map[uint64]bool)
	for id := int32(0); id < 1000; id++ {
		for draw := uint32(0); draw < 4; draw++ {
			h := mix(7, id, 0, draw, saltArrival)
			if seen[h] {
				t.Fatalf("collision in arrival stream at id=%d draw=%d", id, draw)
			}
			seen[h] = true
			if u := uniform(h); !(u > 0 && u <= 1) {
				t.Fatalf("uniform out of (0,1]: %v", u)
			}
		}
	}
	if mix(7, 1, 0, 0, saltArrival) == mix(7, 1, 0, 0, saltAccept) {
		t.Fatal("salts do not separate streams")
	}
	if mix(7, 1, 0, 0, saltArrival) == mix(7, 1, 1, 0, saltArrival) {
		t.Fatal("generation bump does not re-key the stream")
	}
}
