package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"lakego/internal/flightrec"
)

// ClassResult is one tenant class's replay outcome.
type ClassResult struct {
	Name      string
	Mix       string
	Clients   int
	Arrivals  int64
	Completed int64
	Shed      int64 // arrivals dropped by the open-loop discipline or admission
	Failed    int64 // submissions whose Wait errored (fault plane)
	// PeakOutstanding is the high-water mark of in-flight requests over
	// the class's tenant groups — the admission-invariant witness: it can
	// never exceed the class's per-group MaxOutstanding cap.
	PeakOutstanding int64

	// Sojourn quantiles over completed requests, measured from the
	// scheduled arrival (virtual).
	P50, P99, P999, Max time.Duration

	// WithinP99/WithinP999 count arrivals served inside each budget;
	// sheds and failures count against attainment by never counting in.
	WithinP99, WithinP999 int64
	// AttainP99/AttainP999 are the fractions of *arrivals* within budget.
	AttainP99, AttainP999 float64
	// SLOMet is the gate: >=99% of arrivals within the p99 budget and,
	// when a p999 budget is set, >=99.9% within it.
	SLOMet bool
}

// measure computes quantiles and attainment from the class's samples.
func (c *ClassResult) measure(samples []int64, tc *TenantClass) {
	if len(samples) > 0 {
		s := append([]int64(nil), samples...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		c.P50 = quantile(s, 0.50)
		c.P99 = quantile(s, 0.99)
		c.P999 = quantile(s, 0.999)
		c.Max = time.Duration(s[len(s)-1])
		budget99 := int64(tc.SLOp99US * 1e3)
		budget999 := int64(tc.SLOp999US * 1e3)
		c.WithinP99 = int64(sort.Search(len(s), func(i int) bool { return s[i] > budget99 }))
		if budget999 > 0 {
			c.WithinP999 = int64(sort.Search(len(s), func(i int) bool { return s[i] > budget999 }))
		}
	}
	if c.Arrivals > 0 {
		c.AttainP99 = float64(c.WithinP99) / float64(c.Arrivals)
		c.AttainP999 = float64(c.WithinP999) / float64(c.Arrivals)
	}
	c.SLOMet = c.AttainP99 >= 0.99 && (tc.SLOp999US == 0 || c.AttainP999 >= 0.999)
	if c.Arrivals == 0 {
		c.SLOMet = true // vacuously: an idle class cannot fail its SLO
	}
}

// quantile returns the q'th sojourn quantile of sorted ns samples
// (nearest-rank, the same convention the micro-bench suite uses).
func quantile(sorted []int64, q float64) time.Duration {
	rank := int(q*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return time.Duration(sorted[rank])
}

// Result is one scenario replay's outcome.
type Result struct {
	Scenario *Scenario
	Shards   int
	Clients  int // population actually simulated (class fractions rounded down)

	Arrivals  int64
	Completed int64
	Shed      int64
	Failed    int64
	Churned   int64

	VirtualElapsed time.Duration
	OfferedPerSec  float64 // arrivals over the scheduled window
	GoodputPerSec  float64 // completions over elapsed virtual time
	Attainment     float64 // fraction of all arrivals within their class's p99 budget

	Classes []ClassResult

	// Stages is the flightrec-stitched virtual stage breakdown (queue /
	// exec / copy / boundary means) over the recorded slice of the run.
	Stages flightrec.StageMeans

	// Router counters.
	Placements, Reroutes, Rejects int64
}

// SLOMet reports whether every class met its budget.
func (r *Result) SLOMet() bool {
	for i := range r.Classes {
		if !r.Classes[i].SLOMet {
			return false
		}
	}
	return true
}

// benchFile mirrors the cmd/benchdiff Baseline / `lakebench -results`
// schema; lakeload results feed the same CI gate as micro-benches.
type benchFile struct {
	Note       string                        `json:"note,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// groups renders the result as benchdiff benchmark groups under
// "Lakeload/<scenario>". Every value is virtual-clock derived, so a
// fixed-seed scenario produces byte-identical groups run over run.
func (r *Result) groups(into map[string]map[string]float64) {
	prefix := "Lakeload/" + r.Scenario.Name
	run := map[string]float64{
		"clients":            float64(r.Clients),
		"arrivals":           float64(r.Arrivals),
		"completed":          float64(r.Completed),
		"shed":               float64(r.Shed),
		"failed":             float64(r.Failed),
		"churned":            float64(r.Churned),
		"virtual_ns":         float64(r.VirtualElapsed),
		"offered_req_per_s":  r.OfferedPerSec,
		"goodput_req_per_s":  r.GoodputPerSec,
		"slo_attainment_pct": 100 * r.Attainment,
	}
	into[prefix] = run
	for i := range r.Classes {
		c := &r.Classes[i]
		into[fmt.Sprintf("%s/tenant=%s", prefix, c.Name)] = map[string]float64{
			"clients":             float64(c.Clients),
			"arrivals":            float64(c.Arrivals),
			"completed":           float64(c.Completed),
			"shed":                float64(c.Shed),
			"peak_outstanding":    float64(c.PeakOutstanding),
			"p50_us":              float64(c.P50) / 1e3,
			"p99_us":              float64(c.P99) / 1e3,
			"p999_us":             float64(c.P999) / 1e3,
			"max_us":              float64(c.Max) / 1e3,
			"p99_attainment_pct":  100 * c.AttainP99,
			"p999_attainment_pct": 100 * c.AttainP999,
		}
	}
	if r.Stages.Calls > 0 {
		into[prefix+"/stages"] = map[string]float64{
			"calls":            float64(r.Stages.Calls),
			"per_call_ns":      r.Stages.PerCallNS,
			"queue_ns_mean":    r.Stages.QueueNS,
			"exec_ns_mean":     r.Stages.ExecNS,
			"copy_ns_mean":     r.Stages.CopyNS,
			"boundary_ns_mean": r.Stages.BoundaryNS,
		}
	}
	into[prefix+"/fleet"] = map[string]float64{
		"shards":     float64(r.Shards),
		"placements": float64(r.Placements),
		"reroutes":   float64(r.Reroutes),
		"rejects":    float64(r.Rejects),
	}
}

// BenchJSON serializes results (and an optional knee sweep) in the
// benchdiff schema. Keys are emitted sorted by encoding/json, so the
// bytes are canonical for a fixed seed.
func BenchJSON(note string, results []*Result, sweep *SweepResult) ([]byte, error) {
	f := benchFile{Note: note, Benchmarks: make(map[string]map[string]float64)}
	for _, r := range results {
		r.groups(f.Benchmarks)
	}
	if sweep != nil {
		sweep.groups(f.Benchmarks)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Summary renders the human-facing report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d clients, %d arrivals in %v virtual (offered %.0f req/s)\n",
		r.Scenario.Name, r.Clients, r.Arrivals, r.Scenario.Duration(), r.OfferedPerSec)
	fmt.Fprintf(&b, "  completed %d  shed %d  failed %d  churned %d  goodput %.0f req/s  attainment %.3f%%\n",
		r.Completed, r.Shed, r.Failed, r.Churned, r.GoodputPerSec, 100*r.Attainment)
	fmt.Fprintf(&b, "  %-12s %8s %9s %6s %10s %10s %10s %9s %9s  %s\n",
		"tenant", "arrivals", "completed", "shed", "p50_us", "p99_us", "p999_us", "att99%", "att999%", "slo")
	for i := range r.Classes {
		c := &r.Classes[i]
		verdict := "MET"
		if !c.SLOMet {
			verdict = "MISSED"
		}
		fmt.Fprintf(&b, "  %-12s %8d %9d %6d %10.1f %10.1f %10.1f %8.3f%% %8.3f%%  %s\n",
			c.Name, c.Arrivals, c.Completed, c.Shed,
			float64(c.P50)/1e3, float64(c.P99)/1e3, float64(c.P999)/1e3,
			100*c.AttainP99, 100*c.AttainP999, verdict)
	}
	if r.Stages.Calls > 0 {
		fmt.Fprintf(&b, "  stages (mean us over %d recorded calls): queue %.1f  exec %.1f  copy %.1f  boundary %.1f\n",
			r.Stages.Calls, r.Stages.QueueNS/1e3, r.Stages.ExecNS/1e3,
			r.Stages.CopyNS/1e3, r.Stages.BoundaryNS/1e3)
	}
	fmt.Fprintf(&b, "  fleet: %d shards, %d placements, %d reroutes, %d admission rejects\n",
		r.Shards, r.Placements, r.Reroutes, r.Rejects)
	return b.String()
}
