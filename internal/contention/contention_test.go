package contention

import (
	"testing"
	"time"

	"lakego/internal/core"
)

func boot(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestFig1Phases(t *testing.T) {
	pts := Fig1(boot(t))
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		switch {
		case p.T < Fig1T0:
			if p.PagesPerSec != 0 {
				t.Fatalf("throughput %v before app start", p.PagesPerSec)
			}
		case p.T < Fig1T1:
			if p.PagesPerSec < 1.8e7 {
				t.Fatalf("uncontended throughput %v too low at %v", p.PagesPerSec, p.T)
			}
			if p.KernelDemand != 0 {
				t.Fatalf("kernel demand %v before T1", p.KernelDemand)
			}
		case p.T < Fig1T2:
			if p.KernelDemand <= 0 || p.KernelDemand >= 0.6 {
				t.Fatalf("one-classifier demand = %v", p.KernelDemand)
			}
		default:
			if p.KernelDemand < 0.6 {
				t.Fatalf("two-classifier demand = %v", p.KernelDemand)
			}
		}
	}
}

// The paper reports degradation "by up to 68%".
func TestFig1Degradation(t *testing.T) {
	pts := Fig1(boot(t))
	d := Fig1Degradation(pts)
	if d < 0.60 || d > 0.75 {
		t.Fatalf("worst-case degradation = %.2f, want ~0.68", d)
	}
}

func TestFig1DegradationEmpty(t *testing.T) {
	if got := Fig1Degradation(nil); got != 0 {
		t.Fatalf("degradation of empty series = %v", got)
	}
}

func TestFig13AdaptiveBehaviour(t *testing.T) {
	pts := Fig13(boot(t))
	s := Summarize(pts)
	if !s.GPUBefore {
		t.Fatal("predictor never used the GPU before contention")
	}
	if s.CPUFraction < 0.8 {
		t.Fatalf("predictor stayed on GPU during contention (CPU fraction %.2f)", s.CPUFraction)
	}
	if !s.HashingStable {
		t.Fatal("user hashing throughput degraded despite the policy")
	}
	if !s.ReclaimedGPU {
		t.Fatal("predictor never reclaimed the GPU after the user process exited")
	}
	if s.ReclaimedBy > 5*time.Second {
		t.Fatalf("GPU reclaimed after %v, want within the moving-average decay", s.ReclaimedBy)
	}
}

func TestFig13PredictorThroughputLevels(t *testing.T) {
	pts := Fig13(boot(t))
	for _, p := range pts {
		if p.OnGPU && p.PredictorNorm != 1.0 {
			t.Fatalf("GPU step with norm %v", p.PredictorNorm)
		}
		if !p.OnGPU && p.PredictorNorm != predictorCPUNorm {
			t.Fatalf("CPU step with norm %v", p.PredictorNorm)
		}
	}
}

func TestMultiGPUOverflowKeepsPredictorFast(t *testing.T) {
	rt := boot(t)
	pts := Fig13MultiGPU(rt)
	s := SummarizeMultiGPU(pts)
	if !s.HashingStable {
		t.Fatal("user hashing degraded despite GPU1 overflow")
	}
	// During contention the predictor overflows to GPU1 (after the
	// moving-average detection lag) instead of dropping to CPU speed.
	if s.ContendedFullSpeed < 0.8 {
		t.Fatalf("predictor full-speed for only %.0f%% of the contended window",
			s.ContendedFullSpeed*100)
	}
	if s.GPU1Frac == 0 {
		t.Fatal("second GPU never used")
	}
	// And it should beat the single-GPU policy's average throughput.
	rt2 := boot(t)
	single := Summarize(Fig13(rt2))
	if single.CPUFraction < 0.5 {
		t.Fatalf("single-GPU baseline unexpectedly avoided the CPU (%.2f)", single.CPUFraction)
	}
	if s.AvgPredictorNorm < 0.95 {
		t.Fatalf("multi-GPU average predictor norm = %.2f, want ~1.0", s.AvgPredictorNorm)
	}
}

func TestMultiGPUTargetStrings(t *testing.T) {
	if TargetGPU0.String() != "GPU0" || TargetGPU1.String() != "GPU1" || TargetCPU.String() != "CPU" {
		t.Fatal("target strings wrong")
	}
}

func TestFig1MovingAverageSmooths(t *testing.T) {
	pts := Fig1(boot(t))
	// The moving average lags the raw series across the T1 step change.
	var rawAtT1, avgAtT1 float64
	for _, p := range pts {
		if p.T == Fig1T1 {
			rawAtT1, avgAtT1 = p.PagesPerSec, p.MovingAvg
		}
	}
	if avgAtT1 <= rawAtT1 {
		t.Fatalf("moving average %.2e should lag above the raw drop %.2e at T1",
			avgAtT1, rawAtT1)
	}
}
