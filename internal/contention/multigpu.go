package contention

import (
	"time"

	"lakego/internal/core"
	"lakego/internal/gpu"
	"lakego/internal/nvml"
	"lakego/internal/policy"
)

// Multi-GPU extension: the paper's testbed has two A100s but the evaluation
// shares one between kernel and user space. With a second device, the Fig 3
// policy generalizes to a preference ladder — GPU0, then GPU1, then the CPU
// — and the kernel predictor rides out user-space contention at full
// throughput instead of degrading to the CPU fallback.

// MultiGPUTarget identifies where the predictor ran in one step.
type MultiGPUTarget int

// Preference ladder outcomes.
const (
	TargetGPU0 MultiGPUTarget = iota
	TargetGPU1
	TargetCPU
)

func (t MultiGPUTarget) String() string {
	switch t {
	case TargetGPU0:
		return "GPU0"
	case TargetGPU1:
		return "GPU1"
	}
	return "CPU"
}

// MultiGPUPoint is one timeline sample.
type MultiGPUPoint struct {
	T             time.Duration
	HashingNorm   float64
	PredictorNorm float64
	Target        MultiGPUTarget
}

// Fig13MultiGPU reruns the Fig 13 scenario with a second device available
// to the kernel. The user process still hashes on GPU0 (it owns it); the
// kernel's ladder policy probes per-device utilization and overflows to
// GPU1 under contention.
func Fig13MultiGPU(rt *core.Runtime) []MultiGPUPoint {
	clock := rt.Clock()
	dev0 := rt.Device()
	dev1 := gpu.New(dev0.Spec(), clock)

	mk := func(dev *gpu.Device) *policy.Adaptive {
		return policy.NewAdaptive(policy.AdaptiveConfig{
			CheckInterval: 5 * time.Millisecond, UtilThreshold: 40,
			BatchThreshold: 8, Window: 8,
		}, clock, func() int { return nvml.DeviceGetUtilizationRates(dev).GPU })
	}
	pol0, pol1 := mk(dev0), mk(dev1)

	const batch = 32
	var out []MultiGPUPoint
	for t := time.Duration(0); t <= Fig13Horizon; t += Step {
		clock.AdvanceTo(t)
		hashingGPU := t >= Fig13T2 && t < Fig13T3
		hashingAlive := t >= Fig13T1 && t < Fig13T3

		p := MultiGPUPoint{T: t}
		switch {
		case pol0.Decide(batch) == policy.UseGPU:
			occupySlices(dev0, "kernel-predictor", t, 0.15)
			p.PredictorNorm, p.Target = 1.0, TargetGPU0
		case pol1.Decide(batch) == policy.UseGPU:
			occupySlices(dev1, "kernel-predictor", t, 0.15)
			p.PredictorNorm, p.Target = 1.0, TargetGPU1
		default:
			p.PredictorNorm, p.Target = predictorCPUNorm, TargetCPU
		}

		if hashingGPU {
			occupySlices(dev0, "user-hash", t, 0.72)
			p.HashingNorm = 1.0
		} else if hashingAlive {
			p.HashingNorm = 0.08
		}
		out = append(out, p)
	}
	return out
}

// MultiGPUSummary aggregates a Fig13MultiGPU timeline.
type MultiGPUSummary struct {
	// Fractions of steps per target.
	GPU0Frac, GPU1Frac, CPUFrac float64
	// AvgPredictorNorm across the whole run.
	AvgPredictorNorm float64
	// ContendedFullSpeed is the fraction of the contended window the
	// predictor still ran at full (GPU) throughput.
	ContendedFullSpeed float64
	HashingStable      bool
}

// SummarizeMultiGPU computes the summary.
func SummarizeMultiGPU(points []MultiGPUPoint) MultiGPUSummary {
	var s MultiGPUSummary
	s.HashingStable = true
	contended, contendedFull := 0, 0
	for _, p := range points {
		switch p.Target {
		case TargetGPU0:
			s.GPU0Frac++
		case TargetGPU1:
			s.GPU1Frac++
		default:
			s.CPUFrac++
		}
		s.AvgPredictorNorm += p.PredictorNorm
		if p.T >= Fig13T2 && p.T < Fig13T3 {
			contended++
			if p.PredictorNorm >= 1.0 {
				contendedFull++
			}
			if p.HashingNorm < 0.99 {
				s.HashingStable = false
			}
		}
	}
	n := float64(len(points))
	if n > 0 {
		s.GPU0Frac /= n
		s.GPU1Frac /= n
		s.CPUFrac /= n
		s.AvgPredictorNorm /= n
	}
	if contended > 0 {
		s.ContendedFullSpeed = float64(contendedFull) / float64(contended)
	}
	return s
}
