// Package contention reproduces the user/kernel accelerator contention
// experiments: Fig 1 (unmanaged contention destabilizes a GPU-accelerated
// user process when kernel ML workloads arrive) and Fig 13 (the Fig 3
// adaptive policy detects pressure via NVML, falls back to the CPU, and
// reclaims the GPU when the user process exits).
//
// The scenario driver advances virtual time in fixed steps. The user-space
// page-hashing application and the kernel classifiers occupy the simulated
// device for their demanded share of each step, so NVML utilization — the
// signal the policy samples through LAKE's remoted query — emerges from
// actual device occupancy rather than being scripted.
package contention

import (
	"time"

	"lakego/internal/core"
	"lakego/internal/policy"
)

// Step is the sampling interval of both timelines.
const Step = 250 * time.Millisecond

// Fig1Point is one sample of the unmanaged-contention timeline.
type Fig1Point struct {
	T time.Duration
	// PagesPerSec is the user hashing application's throughput.
	PagesPerSec float64
	// MovingAvg is the 4-sample moving average the figure overlays.
	MovingAvg float64
	// KernelDemand is the fraction of device time kernel ML consumed.
	KernelDemand float64
}

// Fig 1 timeline constants: the hashing app starts at T0; the page warmth
// classifier begins contending at T1 and the I/O latency predictor at T2.
const (
	Fig1Horizon = 10 * time.Second
	Fig1T0      = 1 * time.Second
	Fig1T1      = 4 * time.Second
	Fig1T2      = 7 * time.Second
)

// Peak hashing throughput: Fig 1's y-axis tops out around 2x10^7 pages/s.
const peakHashRate = 2e7

// Device demand fractions of the two kernel workloads when active, matched
// to Fig 1's ~68% worst-case degradation.
const (
	warmthDemand    = 0.42
	predictorDemand = 0.26
)

// Fig1 runs the unmanaged scenario: no policy, kernel work simply queues on
// the device alongside the user application.
func Fig1(rt *core.Runtime) []Fig1Point {
	clock := rt.Clock()
	dev := rt.Device()
	avg := policy.NewMovingAverage(4)
	var out []Fig1Point
	for t := time.Duration(0); t <= Fig1Horizon; t += Step {
		clock.AdvanceTo(t)
		demand := 0.0
		if t >= Fig1T1 {
			demand += warmthDemand
		}
		if t >= Fig1T2 {
			demand += predictorDemand
		}
		// Deterministic ripple stands in for measurement noise.
		ripple := 0.97 + 0.06*float64(int(t/Step)%3)/2
		p := Fig1Point{T: t, KernelDemand: demand}
		if t >= Fig1T0 {
			share := (1 - demand) * ripple
			if share < 0 {
				share = 0
			}
			p.PagesPerSec = peakHashRate * share
			// Reflect occupancy on the device for NVML observers.
			dev.OccupyUntil("user-hash", clock.Now()+time.Duration(share*float64(Step)))
		}
		if demand > 0 {
			dev.OccupyUntil("kernel-ml", clock.Now()+time.Duration(demand*float64(Step)))
		}
		p.MovingAvg = avg.Add(p.PagesPerSec)
		out = append(out, p)
	}
	return out
}

// Fig1Degradation returns the worst-case throughput drop between the
// uncontended and fully contended phases (paper: "up to 68%").
func Fig1Degradation(points []Fig1Point) float64 {
	var uncontended, worst float64
	for _, p := range points {
		if p.T >= Fig1T0 && p.T < Fig1T1 && p.PagesPerSec > uncontended {
			uncontended = p.PagesPerSec
		}
	}
	worst = uncontended
	for _, p := range points {
		if p.T >= Fig1T2 && p.PagesPerSec < worst {
			worst = p.PagesPerSec
		}
	}
	if uncontended == 0 {
		return 0
	}
	return 1 - worst/uncontended
}

// Fig13Point is one sample of the adaptive-policy timeline.
type Fig13Point struct {
	T time.Duration
	// HashingNorm is the user process's normalized throughput.
	HashingNorm float64
	// PredictorNorm is the kernel I/O latency predictor's normalized
	// throughput.
	PredictorNorm float64
	// OnGPU records where the policy routed the predictor this step.
	OnGPU bool
}

// Fig 13 timeline constants: the predictor runs throughout; the user
// process launches at T1, begins hashing on the GPU at T2 and terminates
// at T3.
const (
	Fig13Horizon = 30 * time.Second
	Fig13T1      = 8 * time.Second
	Fig13T2      = 12 * time.Second
	Fig13T3      = 22 * time.Second
)

// Kernel predictor throughput on the CPU fallback relative to the GPU.
const predictorCPUNorm = 0.45

// Fig13 runs the managed scenario with the paper's adaptive policy wired to
// the remoted NVML query.
func Fig13(rt *core.Runtime) []Fig13Point {
	clock := rt.Clock()
	dev := rt.Device()
	pol := rt.NewAdaptivePolicy(policy.AdaptiveConfig{
		CheckInterval:  5 * time.Millisecond,
		UtilThreshold:  40,
		BatchThreshold: 8,
		Window:         8,
	})
	const batch = 32 // steady inference batch per step
	var out []Fig13Point
	for t := time.Duration(0); t <= Fig13Horizon; t += Step {
		clock.AdvanceTo(t)
		hashingGPU := t >= Fig13T2 && t < Fig13T3
		hashingAlive := t >= Fig13T1 && t < Fig13T3

		// The policy decides on the utilization its NVML samples observed
		// over the trailing window — i.e. the previous step's occupancy,
		// exactly the one-sample lag a real deployment sees.
		p := Fig13Point{T: t}
		decision := pol.Decide(batch)
		if decision == policy.UseGPU {
			occupySlices(dev, "kernel-predictor", t, 0.15)
			p.PredictorNorm = 1.0
			p.OnGPU = true
		} else {
			p.PredictorNorm = predictorCPUNorm
		}

		if hashingGPU {
			occupySlices(dev, "user-hash", t, 0.72)
			p.HashingNorm = 1.0
		} else if hashingAlive {
			p.HashingNorm = 0.08 // staging input on the CPU before T2
		}
		out = append(out, p)
	}
	return out
}

// occupySlices lays the client's duty cycle across the step as interleaved
// busy slices, so any trailing utilization window inside the step observes
// ~frac busy time.
func occupySlices(dev interface {
	OccupySpan(client string, start, end time.Duration)
}, client string, stepStart time.Duration, frac float64) {
	const slices = 10
	sliceLen := Step / slices
	busy := time.Duration(frac * float64(sliceLen))
	for k := 0; k < slices; k++ {
		s := stepStart + time.Duration(k)*sliceLen
		dev.OccupySpan(client, s, s+busy)
	}
}

// Fig13Summary extracts the behaviour the paper highlights from a Fig13
// timeline: whether the predictor ran on the GPU before contention, fell
// back to the CPU while the user process hashed on the GPU, and reclaimed
// the GPU after it exited.
type Fig13Summary struct {
	GPUBefore     bool
	CPUFraction   float64 // fraction of contended steps spent on CPU
	ReclaimedBy   time.Duration
	ReclaimedGPU  bool
	HashingStable bool // user throughput stayed at 1.0 while on GPU
}

// Summarize computes the Fig13Summary.
func Summarize(points []Fig13Point) Fig13Summary {
	var s Fig13Summary
	s.HashingStable = true
	contended, onCPU := 0, 0
	for _, p := range points {
		switch {
		case p.T < Fig13T1:
			if p.OnGPU {
				s.GPUBefore = true
			}
		case p.T >= Fig13T2 && p.T < Fig13T3:
			contended++
			if !p.OnGPU {
				onCPU++
			}
			if p.HashingNorm < 0.99 {
				s.HashingStable = false
			}
		case p.T >= Fig13T3:
			if p.OnGPU && !s.ReclaimedGPU {
				s.ReclaimedGPU = true
				s.ReclaimedBy = p.T - Fig13T3
			}
		}
	}
	if contended > 0 {
		s.CPUFraction = float64(onCPU) / float64(contended)
	}
	return s
}
