package batcher

import (
	"time"

	"lakego/internal/cuda"
	"lakego/internal/flightrec"
	"lakego/internal/policy"
	"lakego/internal/remoting"
	"lakego/internal/telemetry"
)

// flushReason tags why a batch was formed.
type flushReason int

const (
	flushFull flushReason = iota
	flushDeadline
)

// Wait blocks until the request is delivered and returns its outputs, one
// slice per submitted item.
//
// Flushes are driven cooperatively by waiters (there is no hidden flusher
// thread, keeping virtual time deterministic): the first waiter whose
// request is still queued becomes the leader, lingers Config.Linger of
// real time so concurrent clients can coalesce into the batch, then
// drives a deadline flush — advancing the virtual clock to the oldest
// request's enqueue time + MaxWait, exactly as a max-wait timer would
// fire. A submission that fills the batch flushes immediately from Submit
// and wakes any lingering leader.
func (p *Pending) Wait() ([][]float32, error) {
	m := p.m
	b := m.b
	for {
		select {
		case <-p.done:
			return p.out, p.err
		default:
		}
		m.mu.Lock()
		if p.taken {
			// A flush claimed the request; delivery is imminent (or done).
			m.mu.Unlock()
			<-p.done
			return p.out, p.err
		}
		if m.leader {
			// Another waiter is coalescing this generation. Wait for our
			// delivery or for the leader to step down (its flush may not
			// have reached us if the queue exceeded staging capacity).
			gone := m.leaderGone
			m.mu.Unlock()
			select {
			case <-p.done:
				return p.out, p.err
			case <-gone:
				continue
			}
		}
		m.leader = true
		m.leaderGone = make(chan struct{})
		var full chan struct{}
		if b.cfg.Linger > 0 {
			full = make(chan struct{})
			m.fullSig = full
		}
		m.mu.Unlock()

		if full != nil {
			t := time.NewTimer(b.cfg.Linger)
			select {
			case <-full: // batch filled; Submit flushed it
			case <-t.C: // linger expired; drive the deadline flush
			case <-p.done: // our request was delivered mid-linger
			}
			t.Stop()
		}

		m.mu.Lock()
		m.leader = false
		if m.fullSig == full {
			m.fullSig = nil
		}
		close(m.leaderGone)
		var batch []*Pending
		if !p.taken {
			batch = m.takeLocked()
		}
		m.mu.Unlock()
		if batch != nil {
			b.execute(m, batch, flushDeadline)
		}
		// Loop: either our request was in that batch (delivered) or it is
		// still queued behind staging capacity and we lead another round.
	}
}

// execute runs one formed batch to completion and delivers every request.
// Flushes of the same model are serialized: there is one device staging
// area per model, like one CUDA stream per lakeD model context.
func (b *Batcher) execute(m *model, batch []*Pending, reason flushReason) {
	m.execMu.Lock()
	defer m.execMu.Unlock()

	clock := b.rt.Clock()
	if reason == flushDeadline {
		// The max-wait timer fires at the oldest request's deadline; on
		// the virtual clock the flush happens at exactly that instant
		// (no-op if the clock is already past it).
		clock.AdvanceTo(batch[0].enq + b.cfg.MaxWait)
	}
	flushAt := clock.Now()
	items := 0
	for _, p := range batch {
		items += p.count
		d := int64(flushAt - p.enq)
		for cur := b.maxDelay.Load(); d > cur; cur = b.maxDelay.Load() {
			if b.maxDelay.CompareAndSwap(cur, d) {
				break
			}
		}
		b.tel.QueueDelay.Observe(d)
	}
	b.tel.FlushItems.Observe(int64(items))
	// One trace ID per flush: the remoted command, its daemon-side events,
	// and the flush span all correlate under it, while each member request
	// keeps its own ID (linked by flush_member events on both sides).
	var ftid uint64
	if b.rec.Enabled() || b.tel.Tracer.Enabled() {
		ftid = b.rec.NextTraceID()
	}
	b.rec.Emit(flightrec.DomainBatcher, flightrec.EvFlushStart,
		ftid, batch[0].seq, 0, uint64(len(batch)), uint64(reason), 0)
	for _, p := range batch {
		b.rec.Emit(flightrec.DomainBatcher, flightrec.EvFlushMember,
			p.tid, p.seq, 0, ftid, uint64(p.count), 0)
	}
	var flushSpan *telemetry.Span
	var ownSpan bool
	if b.tel.Tracer.Enabled() {
		// The flush span opens at the oldest request's enqueue: the
		// coalesce stage is the window spent forming the batch, and the
		// nested CuBatchedInfer call below attaches its marshal / channel /
		// dispatch / launch / demux stages to this same span.
		flushSpan, ownSpan = b.tel.Tracer.StartSpan("flush/"+m.mc.Name, batch[0].seq, batch[0].enq, ftid)
		flushSpan.AddStage("coalesce", batch[0].enq, flushAt, 0)
	}
	b.flushes.Add(1)
	if reason == flushFull {
		b.fullFlushes.Add(1)
	} else {
		b.deadlineFlushes.Add(1)
	}

	// Adaptive sizing: the Fig 3 policy sees the formed batch and routes
	// the whole flush to the GPU only when it is profitable and the
	// device is uncontended.
	dec := policy.UseGPU
	if b.cfg.Policy != nil {
		dec = b.cfg.Policy(items)
	}
	var flushErr error
	// perRes is aligned 1:1 with batch when usePer is set (the Into call
	// verifies every response pair's sequence against its entry).
	var perRes []cuda.Result
	usePer := false
	ranOnGPU := false
	if dec == policy.UseGPU {
		b.gpuFlushes.Add(1)
		ranOnGPU = true
		entries := m.entriesScratch[:0]
		for _, p := range batch {
			entries = append(entries, remoting.BatchEntry{
				Seq:     p.seq,
				InOff:   uint64(p.inBuf.Offset()),
				OutOff:  uint64(p.outBuf.Offset()),
				Count:   uint32(p.count),
				TraceID: p.tid,
			})
		}
		m.entriesScratch = entries
		// Per-flush placement: on a multi-device pool each launch goes to
		// the least-utilized eligible device's staging spec.
		spec := m.specs[0]
		if b.pool != nil {
			spec = m.specs[b.pool.PlaceFlush(nil)]
		}
		res, r := b.rt.Lib().CuBatchedInferInto(m.mc.Name, spec, entries, ftid, &m.wireScratch)
		switch r {
		case cuda.Success:
			perRes, usePer = res, true
		case cuda.ErrNotReady:
			// lakeD is unavailable (declared dead and not recovered): the
			// kernel must still answer its clients, so the formed batch
			// completes on the CPU fallback at its calibrated cost.
			b.fallbackFlushes.Add(1)
			ranOnGPU = false
			flushErr = m.runCPU(batch)
			clock.Advance(m.mc.CPUFixed + time.Duration(items)*m.mc.CPUPerItem)
		default:
			flushErr = r.Err()
		}
	} else {
		b.cpuFlushes.Add(1)
		flushErr = m.runCPU(batch)
		clock.Advance(m.mc.CPUFixed + time.Duration(items)*m.mc.CPUPerItem)
	}

	now := clock.Now()
	if ownSpan {
		b.tel.Tracer.FinishSpan(flushSpan, now)
	}
	var onGPU uint64
	if ranOnGPU {
		onGPU = 1
	}
	b.rec.Emit(flightrec.DomainBatcher, flightrec.EvFlushEnd,
		ftid, batch[0].seq, 0, uint64(len(batch)), onGPU, 0)
	if flushErr == nil && items > 0 {
		// Per-item execution latency on the path that actually ran — the
		// observed signal the Fig 3 policy can use in place of the model.
		perItem := (now - flushAt) / time.Duration(items)
		if ranOnGPU {
			b.tel.GPUItemLatency.ObserveDuration(perItem)
		} else {
			b.tel.CPUItemLatency.ObserveDuration(perItem)
		}
	}
	region := b.rt.Region()
	for i, p := range batch {
		err := flushErr
		if err == nil && usePer {
			if i >= len(perRes) {
				err = cuda.ErrUnknown.Err()
			} else if perRes[i] != cuda.Success {
				err = perRes[i].Err()
			}
		}
		if err == nil {
			p.out, err = p.unpackOut()
		}
		p.err = err
		p.doneAt = now
		region.Free(p.inBuf)
		region.Free(p.outBuf)
		p.c.outstanding.Add(-1)
		close(p.done)
	}
}

// runCPU executes a flush on the kernel CPU fallback path: real forward
// passes written straight into each request's output slice. The calibrated
// kernel-space cost is charged by the caller.
func (m *model) runCPU(batch []*Pending) error {
	fwd := m.mc.forward() // resolved once: the whole flush runs one model version
	for _, p := range batch {
		flat, err := cuda.Float32s(p.inBuf.Bytes(), p.count*m.mc.InputWidth)
		if err != nil {
			return err
		}
		out := make([]float32, 0, p.count*m.mc.OutputWidth)
		for i := 0; i < p.count; i++ {
			if fwd == nil {
				out = append(out, make([]float32, m.mc.OutputWidth)...)
				continue
			}
			out = append(out, fwd(flat[i*m.mc.InputWidth:(i+1)*m.mc.InputWidth])...)
		}
		if err := cuda.PutFloat32s(p.outBuf.Bytes(), out); err != nil {
			return err
		}
	}
	return nil
}

// unpackOut copies the request's delivered output slice out of lakeShm
// (the shm slices are freed on delivery).
func (p *Pending) unpackOut() ([][]float32, error) {
	w := p.m.mc.OutputWidth
	flat, err := cuda.Float32s(p.outBuf.Bytes(), p.count*w)
	if err != nil {
		return nil, err
	}
	out := make([][]float32, p.count)
	for i := range out {
		row := make([]float32, w)
		copy(row, flat[i*w:(i+1)*w])
		out[i] = row
	}
	return out, nil
}
