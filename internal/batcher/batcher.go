// Package batcher is lakeD's cross-client inference batching subsystem: it
// turns independent remoted inference calls from many concurrent kernel
// clients into dynamically formed batched GPU launches.
//
// Every crossover in the paper (Table 3, Figs 8-12) is driven by batch
// size: GPU offload only pays off once enough requests are coalesced, yet
// each kernel-side client on its own rarely accumulates a profitable batch.
// The batcher closes that gap with continuous batching:
//
//   - a per-model request queue with a deadline-based flush — a request
//     never waits longer than Config.MaxWait on the virtual clock before
//     its batch is launched;
//   - adaptive per-flush execution: each flush consults the Fig 3
//     profitability/contention policy (internal/policy over remoted NVML
//     utilization) to run the formed batch on the GPU or on the kernel CPU
//     fallback;
//   - per-client fair admission: every client's outstanding requests are
//     bounded (Config.ClientDepth) and excess submissions are rejected
//     with the retryable ErrBackpressure instead of growing the queue;
//   - zero-copy scatter/gather: each request's input and output live in
//     their own lakeShm slices; only offsets cross the kernel/user
//     boundary, and lakeD gathers the slices into one device staging area
//     per flush (internal/remoting.APIBatchedInfer).
//
// Clients obtain a handle with Batcher.Client, submit feature batches with
// Client.Submit (or the synchronous Client.Infer), and collect results via
// Pending.Wait. Results are bit-identical to unbatched execution: batching
// changes when and where a request runs, never what it computes.
package batcher

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/cuda"
	"lakego/internal/flightrec"
	"lakego/internal/gpu"
	"lakego/internal/gpupool"
	"lakego/internal/policy"
	"lakego/internal/remoting"
	"lakego/internal/shm"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// ErrBackpressure is the reject-with-retry result: the client (or the
// region) is at capacity and the caller should retry after draining
// outstanding requests. It is the batching analogue of a full Netlink
// socket buffer — explicit backpressure instead of unbounded queueing.
var ErrBackpressure = errors.New("batcher: queue full, retry after outstanding requests drain")

// Runtime is the slice of core.Runtime the batcher needs. Declaring it here
// (Go interface satisfaction is implicit) keeps internal/core free to
// depend on this package without a cycle.
type Runtime interface {
	Clock() *vtime.Clock
	Lib() *remoting.Lib
	Region() *shm.Region
	RegisterKernel(k *cuda.Kernel)
}

// PoolRuntime is optionally implemented by runtimes that expose a
// multi-device pool. When present (and the pool has more than one device),
// the batcher stages each model on every device and steers each flush to
// the least-utilized one via Pool.PlaceFlush. Single-device runtimes —
// and Runtime implementations that predate pooling — are untouched.
type PoolRuntime interface {
	Pool() *gpupool.Pool
}

// Config parameterizes a Batcher.
type Config struct {
	// MaxBatch is the target flush size in items: a queue reaching it is
	// flushed immediately by the submitting client. Default 32.
	MaxBatch int
	// MaxWait is the deadline-based flush bound on the virtual clock: a
	// flush happens no later than MaxWait after its oldest request was
	// enqueued. Default 100µs.
	MaxWait time.Duration
	// Linger is the real-time window a waiting client leaves open for
	// other goroutines to coalesce into the batch before it drives a
	// deadline flush itself. Linger is wall-clock scheduling slack only;
	// it never advances the virtual clock, so simulated results do not
	// depend on it. 0 flushes on first Wait. Default 200µs.
	Linger time.Duration
	// ClientDepth bounds each client's outstanding (submitted, not yet
	// delivered) requests; submissions beyond it fail with
	// ErrBackpressure. Default 8.
	ClientDepth int
	// Policy picks GPU vs CPU execution for each formed batch, typically
	// a Fig 3 adaptive policy's Decide. nil always offloads.
	Policy policy.Func
}

// DefaultConfig returns the defaults documented on Config.
func DefaultConfig() Config {
	return Config{
		MaxBatch:    32,
		MaxWait:     100 * time.Microsecond,
		Linger:      200 * time.Microsecond,
		ClientDepth: 8,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxBatch <= 0 {
		c.MaxBatch = d.MaxBatch
	}
	if c.MaxWait <= 0 {
		c.MaxWait = d.MaxWait
	}
	if c.Linger < 0 {
		c.Linger = 0
	}
	if c.ClientDepth <= 0 {
		c.ClientDepth = d.ClientDepth
	}
	return c
}

// ModelConfig describes one batchable model, mirroring offload.Config so
// existing workloads can route through the batcher without retraining or
// recalibration.
type ModelConfig struct {
	// Name is the device-kernel symbol (unique per runtime).
	Name string
	// InputWidth / OutputWidth are per-item float32 counts.
	InputWidth, OutputWidth int
	// MaxBatch caps one flush in items (device staging size). Default
	// 1024, the Fig 8-11 sweep ceiling.
	MaxBatch int
	// CPUFixed / CPUPerItem are the calibrated kernel-space CPU costs
	// charged when a flush is routed to the CPU fallback.
	CPUFixed, CPUPerItem time.Duration
	// FlopsPerItem drives the GPU compute-time model.
	FlopsPerItem float64
	// Forward computes one item's output. nil means timing-only (zero
	// outputs).
	Forward func(x []float32) []float32
	// ForwardProvider, when non-nil, is resolved once per flush to obtain
	// the forward function, overriding Forward — the model-lifecycle
	// hot-swap hook. Per-flush resolution keeps every flushed batch on a
	// single model version.
	ForwardProvider func() func(x []float32) []float32
}

// forward resolves the per-flush forward function (nil = timing-only).
func (mc ModelConfig) forward() func(x []float32) []float32 {
	if mc.ForwardProvider != nil {
		return mc.ForwardProvider()
	}
	return mc.Forward
}

// Stats is a snapshot of batcher activity.
type Stats struct {
	// Requests and Items count accepted submissions (a request carries
	// >= 1 items); Rejected counts backpressured submissions.
	Requests, Items, Rejected int64
	// Flushes = GPUFlushes + CPUFlushes; FullFlushes were triggered by
	// reaching MaxBatch, DeadlineFlushes by the MaxWait timer.
	Flushes, GPUFlushes, CPUFlushes int64
	FullFlushes, DeadlineFlushes    int64
	// FallbackFlushes counts GPU-routed flushes that completed on the CPU
	// because lakeD was unavailable (CUDA_ERROR_SYSTEM_NOT_READY). They
	// are included in GPUFlushes (the policy's routing decision).
	FallbackFlushes int64
	// MaxQueueDelay is the largest virtual-time gap observed between a
	// request's enqueue and its batch's flush instant.
	MaxQueueDelay time.Duration
}

// AvgBatch returns the mean flushed batch size in items.
func (s Stats) AvgBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Items) / float64(s.Flushes)
}

// Batcher aggregates inference requests across clients per model.
type Batcher struct {
	rt   Runtime
	cfg  Config
	pool *gpupool.Pool // non-nil only for multi-device runtimes

	mu     sync.Mutex
	models map[string]*model

	requests, items, rejected       atomic.Int64
	flushes, gpuFlushes, cpuFlushes atomic.Int64
	fullFlushes, deadlineFlushes    atomic.Int64
	fallbackFlushes                 atomic.Int64
	maxDelay                        atomic.Int64

	tel Telemetry

	// rec receives batcher-domain events and allocates per-request and
	// per-flush trace IDs; nil-safe.
	rec *flightrec.Recorder
}

// Telemetry is the batcher's instrument set; all fields may be nil.
type Telemetry struct {
	// QueueDepth tracks currently queued items across all models.
	QueueDepth *telemetry.Gauge
	// FlushItems observes the size (items) of each formed batch.
	FlushItems *telemetry.Histogram
	// Rejects counts backpressured submissions.
	Rejects *telemetry.Counter
	// QueueDelay observes each request's enqueue-to-flush virtual wait.
	QueueDelay *telemetry.Histogram
	// GPUItemLatency / CPUItemLatency observe per-item execution latency
	// of each flush on its decided path. They are the shared series
	// (telemetry.MetricGPUItemLatency / MetricCPUItemLatency) the Fig 3
	// policy's observed-latency mode reads.
	GPUItemLatency *telemetry.Histogram
	CPUItemLatency *telemetry.Histogram
	// Tracer opens a flush span (coalesce stage) around each execution.
	Tracer *telemetry.Tracer
}

// SetTelemetry attaches instruments. Must be called during runtime
// construction, before any traffic.
func (b *Batcher) SetTelemetry(tel Telemetry) {
	b.tel = tel
}

// SetFlightRecorder attaches the flight recorder. Must be called during
// runtime construction, before any traffic.
func (b *Batcher) SetFlightRecorder(rec *flightrec.Recorder) {
	b.rec = rec
}

// New creates a batcher on rt. Register models with RegisterModel, then
// hand Client handles to submitters.
func New(rt Runtime, cfg Config) *Batcher {
	b := &Batcher{rt: rt, cfg: cfg.withDefaults(), models: make(map[string]*model)}
	if pr, ok := rt.(PoolRuntime); ok {
		if pool := pr.Pool(); pool != nil && pool.Size() > 1 {
			b.pool = pool
		}
	}
	return b
}

// Config returns the batcher's effective (defaulted) configuration.
func (b *Batcher) Config() Config { return b.cfg }

// Stats snapshots activity counters.
func (b *Batcher) Stats() Stats {
	return Stats{
		Requests:        b.requests.Load(),
		Items:           b.items.Load(),
		Rejected:        b.rejected.Load(),
		Flushes:         b.flushes.Load(),
		GPUFlushes:      b.gpuFlushes.Load(),
		CPUFlushes:      b.cpuFlushes.Load(),
		FullFlushes:     b.fullFlushes.Load(),
		DeadlineFlushes: b.deadlineFlushes.Load(),
		FallbackFlushes: b.fallbackFlushes.Load(),
		MaxQueueDelay:   time.Duration(b.maxDelay.Load()),
	}
}

// model is one registered model's queue plus device-side handles. On a
// multi-device runtime specs holds one staging spec per pool device (index
// = ordinal); single-device runtimes have exactly specs[0].
type model struct {
	b     *Batcher
	mc    ModelConfig
	specs []remoting.BatchSpec

	mu          sync.Mutex
	queue       []*Pending
	queuedItems int
	nextSeq     uint64
	leader      bool
	leaderGone  chan struct{}
	fullSig     chan struct{}

	// execMu serializes flush execution: a model has one device staging
	// area, so concurrent flushes of the same model must not interleave.
	execMu sync.Mutex
	// Flush wire scratch, guarded by execMu: the entry slice and the
	// remoting marshal/demux buffers are recycled across flushes so the
	// steady-state flush wire path performs no heap allocation.
	entriesScratch []remoting.BatchEntry
	wireScratch    remoting.BatchScratch
}

// RegisterModel installs a model: registers its device kernel, creates the
// remoted context/function handles and the device staging allocations one
// flush executes against.
func (b *Batcher) RegisterModel(mc ModelConfig) error {
	if mc.Name == "" {
		return fmt.Errorf("batcher: model needs a name")
	}
	if mc.InputWidth <= 0 || mc.OutputWidth <= 0 {
		return fmt.Errorf("batcher: %s: invalid widths %dx%d", mc.Name, mc.InputWidth, mc.OutputWidth)
	}
	if mc.MaxBatch <= 0 {
		mc.MaxBatch = 1024
	}
	b.mu.Lock()
	if _, dup := b.models[mc.Name]; dup {
		b.mu.Unlock()
		return fmt.Errorf("batcher: model %q already registered", mc.Name)
	}
	b.mu.Unlock()

	m := &model{b: b, mc: mc}
	b.rt.RegisterKernel(&cuda.Kernel{
		Name:  mc.Name,
		Flops: func(args []uint64) float64 { return float64(args[2]) * mc.FlopsPerItem },
		Body:  m.kernelBody,
	})
	lib := b.rt.Lib()
	mod, r := lib.CuModuleLoad(mc.Name + ".cubin")
	if r != cuda.Success {
		return r.Err()
	}
	fn, r := lib.CuModuleGetFunction(mod, mc.Name)
	if r != cuda.Success {
		return r.Err()
	}
	if b.pool == nil {
		// Single-device: the exact wire sequence the batcher has always
		// issued (argless ctx create, single-arg alloc).
		ctx, r := lib.CuCtxCreate("batch-" + mc.Name)
		if r != cuda.Success {
			return r.Err()
		}
		devIn, r := lib.CuMemAlloc(int64(4 * mc.InputWidth * mc.MaxBatch))
		if r != cuda.Success {
			return r.Err()
		}
		devOut, r := lib.CuMemAlloc(int64(4 * mc.OutputWidth * mc.MaxBatch))
		if r != cuda.Success {
			return r.Err()
		}
		m.specs = []remoting.BatchSpec{{
			Ctx: ctx, Fn: fn, DevIn: devIn, DevOut: devOut,
			InWidth: mc.InputWidth, OutWidth: mc.OutputWidth,
		}}
	} else {
		// Multi-device: stage the model on every pool device so a flush can
		// be steered to whichever device placement picks.
		for ord := 0; ord < b.pool.Size(); ord++ {
			ctx, r := lib.CuCtxCreateOnDevice("batch-"+mc.Name, ord)
			if r != cuda.Success {
				return r.Err()
			}
			devIn, r := lib.CuMemAllocOnDevice(int64(4*mc.InputWidth*mc.MaxBatch), ord)
			if r != cuda.Success {
				return r.Err()
			}
			devOut, r := lib.CuMemAllocOnDevice(int64(4*mc.OutputWidth*mc.MaxBatch), ord)
			if r != cuda.Success {
				return r.Err()
			}
			m.specs = append(m.specs, remoting.BatchSpec{
				Ctx: ctx, Fn: fn, DevIn: devIn, DevOut: devOut,
				InWidth: mc.InputWidth, OutWidth: mc.OutputWidth,
			})
		}
	}
	b.mu.Lock()
	b.models[mc.Name] = m
	b.mu.Unlock()
	return nil
}

func (b *Batcher) model(name string) (*model, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.models[name]
	if !ok {
		return nil, fmt.Errorf("batcher: model %q not registered", name)
	}
	return m, nil
}

// kernelBody is the device-side batched inference kernel: one forward pass
// per item over the gathered staging slab. Args: [inPtr, outPtr, items].
func (m *model) kernelBody(dev *gpu.Device, args []uint64) error {
	if len(args) != 3 {
		return fmt.Errorf("%s: want 3 args, got %d", m.mc.Name, len(args))
	}
	n := int(args[2])
	if n <= 0 || n > m.mc.MaxBatch {
		return fmt.Errorf("%s: batch %d out of range", m.mc.Name, n)
	}
	fwd := m.mc.forward()
	if fwd == nil {
		return nil // timing-only model
	}
	inMem, err := dev.Bytes(gpu.DevPtr(args[0]))
	if err != nil {
		return err
	}
	outMem, err := dev.Bytes(gpu.DevPtr(args[1]))
	if err != nil {
		return err
	}
	flat, err := cuda.Float32s(inMem, n*m.mc.InputWidth)
	if err != nil {
		return err
	}
	out := make([]float32, 0, n*m.mc.OutputWidth)
	for i := 0; i < n; i++ {
		y := fwd(flat[i*m.mc.InputWidth : (i+1)*m.mc.InputWidth])
		if len(y) != m.mc.OutputWidth {
			return fmt.Errorf("%s: forward returned %d outputs, want %d",
				m.mc.Name, len(y), m.mc.OutputWidth)
		}
		out = append(out, y...)
	}
	return cuda.PutFloat32s(outMem, out)
}

// Client is one kernel-side submitter's handle. Admission is per client:
// at most ClientDepth outstanding requests, so one chatty subsystem cannot
// starve the others (fair admission).
type Client struct {
	b           *Batcher
	name        string
	outstanding atomic.Int64
}

// Client returns a named submission handle.
func (b *Batcher) Client(name string) *Client {
	return &Client{b: b, name: name}
}

// Name returns the client's name.
func (c *Client) Name() string { return c.name }

// Outstanding reports the client's submitted-but-undelivered requests.
func (c *Client) Outstanding() int { return int(c.outstanding.Load()) }

// Pending is one in-flight request. Exactly one goroutine should Wait on
// it (Wait may drive the flush on the caller's goroutine).
type Pending struct {
	m     *model
	c     *Client
	seq   uint64
	count int
	// tid is the request's flight-recorder trace ID (0 when untraced). It
	// rides the coalesced wire frame so the member request's journey is
	// reconstructable from a dump even though it never issued its own
	// command.
	tid uint64

	inBuf, outBuf *shm.Buffer
	enq           time.Duration

	// taken is guarded by m.mu: true once a flush has claimed the request.
	taken bool

	done   chan struct{}
	out    [][]float32
	err    error
	doneAt time.Duration
}

// Latency reports enqueue-to-delivery virtual time; valid after Wait.
func (p *Pending) Latency() time.Duration { return p.doneAt - p.enq }

// TraceID returns the request's flight-recorder trace ID (0 when
// untraced), letting outer layers — the fleet router — tag their own
// events onto the same per-call timeline.
func (p *Pending) TraceID() uint64 { return p.tid }

// Submit enqueues items (each of the model's input width) as one request
// and returns a Pending handle. It fails fast with ErrBackpressure when the
// client is at depth or lakeShm cannot stage the request. If the submission
// fills the batch to MaxBatch items, the flush runs on this goroutine
// before Submit returns.
func (c *Client) Submit(modelName string, items [][]float32) (*Pending, error) {
	b := c.b
	m, err := b.model(modelName)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("batcher: empty request")
	}
	if len(items) > m.mc.MaxBatch {
		return nil, fmt.Errorf("batcher: request of %d items exceeds model max %d", len(items), m.mc.MaxBatch)
	}
	for _, x := range items {
		if len(x) != m.mc.InputWidth {
			return nil, fmt.Errorf("batcher: item width %d, want %d", len(x), m.mc.InputWidth)
		}
	}
	if c.outstanding.Add(1) > int64(b.cfg.ClientDepth) {
		c.outstanding.Add(-1)
		b.rejected.Add(1)
		b.tel.Rejects.Inc()
		return nil, ErrBackpressure
	}
	p, err := c.stage(m, items)
	if err != nil {
		c.outstanding.Add(-1)
		b.rejected.Add(1)
		b.tel.Rejects.Inc()
		return nil, err
	}
	b.requests.Add(1)
	b.items.Add(int64(p.count))

	if b.rec.Enabled() || b.tel.Tracer.Enabled() {
		p.tid = b.rec.NextTraceID()
	}

	m.mu.Lock()
	p.seq = m.nextSeq
	m.nextSeq++
	p.enq = b.rt.Clock().Now()
	m.queue = append(m.queue, p)
	m.queuedItems += p.count
	b.tel.QueueDepth.Add(int64(p.count))
	b.rec.Emit(flightrec.DomainBatcher, flightrec.EvEnqueue,
		p.tid, p.seq, 0, uint64(p.count), 0, 0)

	var batch []*Pending
	reason := flushFull
	switch {
	case m.queuedItems >= b.cfg.MaxBatch:
		batch = m.takeLocked()
		if m.fullSig != nil {
			close(m.fullSig) // wake a lingering leader; it will find its request taken
			m.fullSig = nil
		}
	case m.queuedItems > 0 && p.enq >= m.queue[0].enq+b.cfg.MaxWait:
		// Another model's activity pushed the clock past our oldest
		// deadline while no waiter was driving; honor it now.
		batch = m.takeLocked()
		reason = flushDeadline
	}
	m.mu.Unlock()
	if batch != nil {
		b.execute(m, batch, reason)
	}
	return p, nil
}

// stage reserves the request's lakeShm slices and writes the input items.
// Allocation failure is backpressure: the region drains as in-flight
// requests complete.
func (c *Client) stage(m *model, items [][]float32) (*Pending, error) {
	region := c.b.rt.Region()
	inBytes := int64(4 * m.mc.InputWidth * len(items))
	outBytes := int64(4 * m.mc.OutputWidth * len(items))
	inBuf, err := region.Alloc(inBytes)
	if err != nil {
		return nil, ErrBackpressure
	}
	outBuf, err := region.Alloc(outBytes)
	if err != nil {
		region.Free(inBuf)
		return nil, ErrBackpressure
	}
	flat := make([]float32, 0, m.mc.InputWidth*len(items))
	for _, x := range items {
		flat = append(flat, x...)
	}
	if err := cuda.PutFloat32s(inBuf.Bytes(), flat); err != nil {
		region.Free(inBuf)
		region.Free(outBuf)
		return nil, err
	}
	return &Pending{
		m: m, c: c, count: len(items),
		inBuf: inBuf, outBuf: outBuf,
		done: make(chan struct{}),
	}, nil
}

// Infer is Submit followed by Wait.
func (c *Client) Infer(modelName string, items [][]float32) ([][]float32, error) {
	p, err := c.Submit(modelName, items)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// takeLocked claims the FIFO prefix of the queue that fits the model's
// staging capacity. Caller holds m.mu.
func (m *model) takeLocked() []*Pending {
	if len(m.queue) == 0 {
		return nil
	}
	items := 0
	n := 0
	for _, p := range m.queue {
		if items+p.count > m.mc.MaxBatch {
			break
		}
		items += p.count
		n++
	}
	if n == 0 {
		return nil
	}
	batch := make([]*Pending, n)
	copy(batch, m.queue[:n])
	m.queue = append(m.queue[:0], m.queue[n:]...)
	m.queuedItems -= items
	m.b.tel.QueueDepth.Add(-int64(items))
	for _, p := range batch {
		p.taken = true
	}
	return batch
}
