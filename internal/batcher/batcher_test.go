package batcher_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/core"
	"lakego/internal/offload"
	"lakego/internal/policy"
)

const (
	inW  = 4
	outW = 2
)

// forward is a deterministic stand-in model: affine mix of the inputs.
func forward(x []float32) []float32 {
	var a, b float32
	for i, v := range x {
		a += v * float32(i+1)
		b += v * v
	}
	return []float32{a, b + 1}
}

func newRT(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func modelCfg(name string) batcher.ModelConfig {
	return batcher.ModelConfig{
		Name:       name,
		InputWidth: inW, OutputWidth: outW,
		MaxBatch: 1024,
		CPUFixed: 2 * time.Microsecond, CPUPerItem: time.Microsecond,
		FlopsPerItem: 1000,
		Forward:      forward,
	}
}

func newBatcher(t *testing.T, rt *core.Runtime, cfg batcher.Config) *batcher.Batcher {
	t.Helper()
	b := rt.NewBatcher(cfg)
	if err := b.RegisterModel(modelCfg("testmodel")); err != nil {
		t.Fatal(err)
	}
	return b
}

func item(i int) []float32 {
	x := make([]float32, inW)
	for j := range x {
		x[j] = float32((i*7+j*3)%13) / 4
	}
	return x
}

// TestDeadlineFlush: a lone request must be flushed at exactly its enqueue
// time + MaxWait on the virtual clock.
func TestDeadlineFlush(t *testing.T) {
	rt := newRT(t)
	cfg := batcher.DefaultConfig()
	cfg.Linger = 0 // drive the deadline flush from the first Wait
	cfg.MaxWait = 150 * time.Microsecond
	b := newBatcher(t, rt, cfg)
	c := b.Client("cli")

	t0 := rt.Clock().Now()
	p, err := c.Submit("testmodel", [][]float32{item(0)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want := forward(item(0))
	if out[0][0] != want[0] || out[0][1] != want[1] {
		t.Fatalf("out = %v, want %v", out[0], want)
	}
	st := b.Stats()
	if st.DeadlineFlushes != 1 || st.FullFlushes != 0 {
		t.Fatalf("flushes = %+v, want one deadline flush", st)
	}
	if st.MaxQueueDelay != cfg.MaxWait {
		t.Fatalf("queue delay = %v, want exactly MaxWait %v", st.MaxQueueDelay, cfg.MaxWait)
	}
	if lat := p.Latency(); lat < cfg.MaxWait {
		t.Fatalf("latency %v < MaxWait", lat)
	}
	if rt.Clock().Now() < t0+cfg.MaxWait {
		t.Fatal("virtual clock did not reach the flush deadline")
	}
}

// TestFullFlush: filling the queue to MaxBatch flushes inline from Submit,
// before any Wait, and ahead of the deadline.
func TestFullFlush(t *testing.T) {
	rt := newRT(t)
	cfg := batcher.DefaultConfig()
	cfg.MaxBatch = 8
	cfg.ClientDepth = 16
	b := newBatcher(t, rt, cfg)
	c := b.Client("cli")

	pendings := make([]*batcher.Pending, cfg.MaxBatch)
	for i := range pendings {
		p, err := c.Submit("testmodel", [][]float32{item(i)})
		if err != nil {
			t.Fatal(err)
		}
		pendings[i] = p
	}
	st := b.Stats()
	if st.FullFlushes != 1 || st.DeadlineFlushes != 0 {
		t.Fatalf("flushes = %+v, want one full flush", st)
	}
	if st.MaxQueueDelay > cfg.MaxWait {
		t.Fatalf("queue delay %v exceeds MaxWait %v", st.MaxQueueDelay, cfg.MaxWait)
	}
	for i, p := range pendings {
		out, err := p.Wait()
		if err != nil {
			t.Fatal(err)
		}
		want := forward(item(i))
		if out[0][0] != want[0] || out[0][1] != want[1] {
			t.Fatalf("request %d: out = %v, want %v", i, out[0], want)
		}
	}
	if got := b.Stats().AvgBatch(); got != float64(cfg.MaxBatch) {
		t.Fatalf("avg batch = %v, want %d", got, cfg.MaxBatch)
	}
}

// TestBackpressure: a client beyond its depth is rejected with the
// retryable result, and capacity returns once a request is delivered.
func TestBackpressure(t *testing.T) {
	rt := newRT(t)
	cfg := batcher.DefaultConfig()
	cfg.ClientDepth = 2
	cfg.Linger = 0
	b := newBatcher(t, rt, cfg)
	c := b.Client("cli")

	p1, err := c.Submit("testmodel", [][]float32{item(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("testmodel", [][]float32{item(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("testmodel", [][]float32{item(3)}); !errors.Is(err, batcher.ErrBackpressure) {
		t.Fatalf("third submit err = %v, want ErrBackpressure", err)
	}
	if got := b.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	if _, err := p1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("testmodel", [][]float32{item(4)}); err != nil {
		t.Fatalf("submit after drain err = %v", err)
	}
	// Other clients are unaffected by this client's backpressure: fair
	// admission is per client.
	if _, err := b.Client("other").Submit("testmodel", [][]float32{item(5)}); err != nil {
		t.Fatalf("other client submit err = %v", err)
	}
}

// TestPolicyRoutesCPU: a contended/unprofitable decision runs the flush on
// the CPU fallback with identical outputs.
func TestPolicyRoutesCPU(t *testing.T) {
	rt := newRT(t)
	cfg := batcher.DefaultConfig()
	cfg.Linger = 0
	cfg.Policy = func(batchSize int) policy.Decision { return policy.UseCPU }
	b := newBatcher(t, rt, cfg)
	c := b.Client("cli")

	out, err := c.Infer("testmodel", [][]float32{item(10), item(11)})
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.CPUFlushes != 1 || st.GPUFlushes != 0 {
		t.Fatalf("flushes = %+v, want CPU flush", st)
	}
	for i, idx := range []int{10, 11} {
		want := forward(item(idx))
		if out[i][0] != want[0] || out[i][1] != want[1] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want)
		}
	}
}

// TestAdaptivePolicySplit: with the Fig 3 policy installed, small flushes
// stay on the CPU and large ones offload.
func TestAdaptivePolicySplit(t *testing.T) {
	rt := newRT(t)
	cfg := batcher.DefaultConfig()
	cfg.Linger = 0
	cfg.MaxBatch = 64
	cfg.ClientDepth = 64
	ap := rt.NewAdaptivePolicy(policy.DefaultAdaptiveConfig()) // batch_threshold 8
	cfg.Policy = ap.Decide
	b := newBatcher(t, rt, cfg)
	c := b.Client("cli")

	if _, err := c.Infer("testmodel", [][]float32{item(0)}); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.CPUFlushes != 1 {
		t.Fatalf("batch of 1 should stay on CPU: %+v", st)
	}
	big := make([][]float32, 32)
	for i := range big {
		big[i] = item(i)
	}
	if _, err := c.Infer("testmodel", big); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.GPUFlushes != 1 {
		t.Fatalf("batch of 32 should offload: %+v", st)
	}
}

// TestBitIdenticalToUnbatched: routing through the batcher must produce
// bit-identical outputs to the unbatched offload paths (GPU and CPU).
func TestBitIdenticalToUnbatched(t *testing.T) {
	rtA := newRT(t)
	b := newBatcher(t, rtA, batcher.DefaultConfig())
	c := b.Client("cli")

	rtB := newRT(t)
	runner, err := offload.NewRunner(rtB, offload.Config{
		Name: "testmodel", InputWidth: inW, OutputWidth: outW, MaxBatch: 1024,
		CPUFixed: 2 * time.Microsecond, CPUPerItem: time.Microsecond,
		FlopsPerItem: 1000, Forward: forward,
	})
	if err != nil {
		t.Fatal(err)
	}

	batch := make([][]float32, 17)
	for i := range batch {
		batch[i] = item(i * 3)
	}
	got, err := c.Infer("testmodel", batch)
	if err != nil {
		t.Fatal(err)
	}
	wantGPU, _, err := runner.RunLAKE(batch, false)
	if err != nil {
		t.Fatal(err)
	}
	wantCPU, _ := runner.RunCPU(batch)
	for i := range batch {
		for j := 0; j < outW; j++ {
			if got[i][j] != wantGPU[i][j] || got[i][j] != wantCPU[i][j] {
				t.Fatalf("item %d out %d: batched %v, unbatched GPU %v, CPU %v",
					i, j, got[i][j], wantGPU[i][j], wantCPU[i][j])
			}
		}
	}
}

// TestConcurrentClients is the race-focused test: many goroutine clients
// share one Batcher, every result must match its own input's forward pass,
// and no request may wait past the deadline on the virtual clock.
func TestConcurrentClients(t *testing.T) {
	rt := newRT(t)
	cfg := batcher.DefaultConfig()
	cfg.MaxBatch = 16
	cfg.MaxWait = time.Millisecond
	cfg.Linger = 50 * time.Microsecond
	cfg.ClientDepth = 8
	b := newBatcher(t, rt, cfg)

	const (
		clients  = 12
		requests = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci)))
			c := b.Client(fmt.Sprintf("cli-%d", ci))
			for r := 0; r < requests; r++ {
				n := 1 + rng.Intn(3)
				items := make([][]float32, n)
				for i := range items {
					items[i] = item(ci*1000 + r*10 + i)
				}
				out, err := c.Infer("testmodel", items)
				if errors.Is(err, batcher.ErrBackpressure) {
					r-- // retry, as the result code intends
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("client %d: %v", ci, err)
					return
				}
				for i := range items {
					want := forward(items[i])
					for j := range want {
						if out[i][j] != want[j] {
							errs <- fmt.Errorf("client %d req %d item %d: got %v want %v",
								ci, r, i, out[i], want)
							return
						}
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Requests != clients*requests {
		t.Fatalf("requests = %d, want %d", st.Requests, clients*requests)
	}
	if st.MaxQueueDelay > cfg.MaxWait {
		t.Fatalf("queue delay %v exceeded MaxWait %v", st.MaxQueueDelay, cfg.MaxWait)
	}
	if st.Flushes == 0 || st.Items < st.Requests {
		t.Fatalf("implausible stats: %+v", st)
	}
	t.Logf("stats: %+v avg batch %.1f", st, st.AvgBatch())
}

// TestSubmitValidation covers the request-shape error paths.
func TestSubmitValidation(t *testing.T) {
	rt := newRT(t)
	b := newBatcher(t, rt, batcher.DefaultConfig())
	c := b.Client("cli")
	if _, err := c.Submit("nosuch", [][]float32{item(0)}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := c.Submit("testmodel", nil); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, err := c.Submit("testmodel", [][]float32{{1, 2}}); err == nil {
		t.Fatal("wrong-width item accepted")
	}
	if err := b.RegisterModel(modelCfg("testmodel")); err == nil {
		t.Fatal("duplicate model registration accepted")
	}
}
