package batcher_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"lakego/internal/batcher"
)

// TestLeaderHandoffFullFlushRace exercises the close(m.fullSig) wake path:
// a deadline leader lingers with its request queued while concurrent
// submitters fill the batch to MaxBatch, so a full flush on a submitter's
// goroutine takes the leader's request out from under it. The leader must
// wake, find its request taken, and deliver without re-flushing. Run with
// -race; the assertions catch lost flushes and double-flushed requests
// (delivering a request twice would close(p.done) twice and panic).
func TestLeaderHandoffFullFlushRace(t *testing.T) {
	const (
		maxBatch = 8
		rounds   = 30
	)
	rt := newRT(t)
	cfg := batcher.DefaultConfig()
	cfg.MaxBatch = maxBatch
	// A long linger guarantees the leader is still lingering when the
	// fillers arrive, so every round exercises the full-flush wake; the
	// wake path means the leader never sleeps the whole window.
	cfg.Linger = 100 * time.Millisecond
	cfg.ClientDepth = 1
	b := newBatcher(t, rt, cfg)

	for round := 0; round < rounds; round++ {
		leader := b.Client(fmt.Sprintf("leader-%d", round))
		lp, err := leader.Submit("testmodel", [][]float32{item(round)})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := lp.Wait()
			if err != nil {
				t.Errorf("round %d: leader wait: %v", round, err)
				return
			}
			if want := forward(item(round)); out[0][0] != want[0] || out[0][1] != want[1] {
				t.Errorf("round %d: leader got %v, want %v", round, out[0], want)
			}
		}()
		// Give the leader a moment to become the lingering deadline-leader.
		time.Sleep(2 * time.Millisecond)

		// Fillers complete the batch; the last Submit triggers the full
		// flush (on that submitter's goroutine) and must wake the leader.
		for f := 0; f < maxBatch-1; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				c := b.Client(fmt.Sprintf("filler-%d-%d", round, f))
				out, err := c.Infer("testmodel", [][]float32{item(round*100 + f)})
				if err != nil {
					t.Errorf("round %d filler %d: %v", round, f, err)
					return
				}
				if want := forward(item(round*100 + f)); out[0][0] != want[0] || out[0][1] != want[1] {
					t.Errorf("round %d filler %d: got %v, want %v", round, f, out[0], want)
				}
			}(f)
		}
		wg.Wait()
	}

	st := b.Stats()
	if st.Requests != rounds*maxBatch {
		t.Fatalf("requests = %d, want %d", st.Requests, rounds*maxBatch)
	}
	if st.Items != rounds*maxBatch {
		t.Fatalf("items = %d, want %d", st.Items, rounds*maxBatch)
	}
	// No flush lost, none duplicated: every accepted item was flushed
	// exactly once, and every flush is accounted to exactly one trigger.
	if st.Flushes != st.FullFlushes+st.DeadlineFlushes {
		t.Fatalf("flushes %d != full %d + deadline %d", st.Flushes, st.FullFlushes, st.DeadlineFlushes)
	}
	if st.FullFlushes == 0 {
		t.Fatal("no full flush fired; the race was never exercised")
	}
	if st.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0", st.Rejected)
	}
}
