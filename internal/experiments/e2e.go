package experiments

import (
	"fmt"
	"strings"

	"lakego/internal/contention"
	"lakego/internal/linnos"
	"lakego/internal/trace"
)

func init() {
	register(Experiment{ID: "fig1", Title: "Unmanaged GPU contention between user and kernel space", Run: Fig1})
	register(Experiment{ID: "fig7", Title: "End-to-end I/O latency prediction on the NVMe array", Run: Fig7})
	register(Experiment{ID: "fig13", Title: "Adaptive contention policy timeline", Run: Fig13})
}

// Fig1 reproduces Fig 1: throughput of a GPU-accelerated user hashing
// application as kernel ML workloads start contending, with no management.
func Fig1() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	pts := contention.Fig1(rt)
	var b strings.Builder
	b.WriteString(header("fig1", "unmanaged contention (paper Fig 1)"))
	b.WriteString(fmt.Sprintf("%-10s %20s %14s %16s\n", "Time (s)", "Pages/sec (x10^7)", "MovAvg", "Kernel demand"))
	for _, p := range pts {
		b.WriteString(fmt.Sprintf("%-10.2f %20.2f %14.2f %16.2f\n",
			p.T.Seconds(), p.PagesPerSec/1e7, p.MovingAvg/1e7, p.KernelDemand))
	}
	b.WriteString(fmt.Sprintf("Worst-case degradation: %.0f%% (paper: up to 68%%)\n",
		contention.Fig1Degradation(pts)*100))
	return b.String(), nil
}

// Fig7TraceLen is the per-device trace length of the fig7 replay; the
// benchmark suite uses a smaller value via Fig7WithLength.
const Fig7TraceLen = 4000

// Fig7 reproduces Fig 7: average read latency for each workload under the
// kernel default, the LinnOS CPU models, and LAKE's policy-modulated
// GPU/CPU execution.
func Fig7() (string, error) { return Fig7WithLength(Fig7TraceLen) }

// Fig7WithLength runs the Fig 7 matrix with a configurable per-device trace
// length.
func Fig7WithLength(n int) (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()

	workloads := []linnos.Workload{
		linnos.SingleTraceWorkload(trace.Azure(), 3, n, 11),
		linnos.SingleTraceWorkload(trace.Cosmos(), 3, n, 12),
		linnos.SingleTraceWorkload(trace.BingI(), 3, n, 13),
		linnos.MixedWorkload("Mixed", n, 14, 1),
		linnos.MixedWorkload("Mixed+", n, 15, 3),
	}

	preds := map[linnos.ModelKind]*linnos.Predictor{}
	for _, kind := range linnos.Kinds() {
		net, err := linnos.TrainedNetwork(kind)
		if err != nil {
			return "", err
		}
		p, err := linnos.NewPredictor(rt, kind, net)
		if err != nil {
			return "", err
		}
		preds[kind] = p
	}

	var b strings.Builder
	b.WriteString(header("fig7", "average read latency by workload and config (paper Fig 7)"))
	b.WriteString(fmt.Sprintf("%-10s %10s", "Workload", "Baseline"))
	for _, kind := range linnos.Kinds() {
		b.WriteString(fmt.Sprintf(" %9s-cpu %8s-LAKE", kind, kind))
	}
	b.WriteString("   (µs)\n")
	for _, w := range workloads {
		base, err := linnos.Replay(rt, nil, w, linnos.DefaultReplayConfig(linnos.ModeBaseline))
		if err != nil {
			return "", err
		}
		b.WriteString(fmt.Sprintf("%-10s %10.0f", w.Name, us(base.AvgRead)))
		for _, kind := range linnos.Kinds() {
			cpu, err := linnos.Replay(rt, preds[kind], w, linnos.DefaultReplayConfig(linnos.ModeCPU))
			if err != nil {
				return "", err
			}
			lk, err := linnos.Replay(rt, preds[kind], w, linnos.DefaultReplayConfig(linnos.ModeLAKE))
			if err != nil {
				return "", err
			}
			b.WriteString(fmt.Sprintf(" %13.0f %13.0f", us(cpu.AvgRead), us(lk.AvgRead)))
		}
		b.WriteString("\n")
	}
	b.WriteString("Shape targets: single traces — baseline wins (ML overhead, no variance to\n" +
		"exploit); Mixed/Mixed+ — ML beats baseline; LAKE's advantage grows with\n" +
		"model size as per-I/O CPU inference saturates the core.\n")
	return b.String(), nil
}

// Fig13 reproduces Fig 13: kernel and user throughput under the adaptive
// contention-averse policy.
func Fig13() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	pts := contention.Fig13(rt)
	var b strings.Builder
	b.WriteString(header("fig13", "adaptive contention policy (paper Fig 13)"))
	b.WriteString(fmt.Sprintf("%-10s %14s %16s %8s\n", "Time (s)", "Hashing (u)", "Predictor (k)", "Target"))
	for i, p := range pts {
		if i%4 != 0 { // 1s resolution for readability
			continue
		}
		target := "CPU"
		if p.OnGPU {
			target = "GPU"
		}
		b.WriteString(fmt.Sprintf("%-10.2f %14.2f %16.2f %8s\n",
			p.T.Seconds(), p.HashingNorm, p.PredictorNorm, target))
	}
	s := contention.Summarize(pts)
	b.WriteString(fmt.Sprintf(
		"GPU before contention: %v; CPU fraction during contention: %.2f;\n"+
			"user throughput stable: %v; GPU reclaimed %.1fs after user exit.\n",
		s.GPUBefore, s.CPUFraction, s.HashingStable, s.ReclaimedBy.Seconds()))
	return b.String(), nil
}
