package experiments

import (
	"fmt"
	"strings"
	"time"

	"lakego/internal/core"
	"lakego/internal/kleio"
	"lakego/internal/kml"
	"lakego/internal/linnos"
	"lakego/internal/malware"
	"lakego/internal/mllb"
	"lakego/internal/nn"
	"lakego/internal/offload"
)

func init() {
	register(Experiment{ID: "fig8", Title: "I/O latency prediction time vs batch size", Run: Fig8})
	register(Experiment{ID: "fig9", Title: "Page warmth classification time vs batch size", Run: Fig9})
	register(Experiment{ID: "fig10", Title: "Load balancing classification time vs batch size", Run: Fig10})
	register(Experiment{ID: "fig11", Title: "Readahead classification time vs batch size", Run: Fig11})
	register(Experiment{ID: "fig12", Title: "Malware detection KNN time vs feature count", Run: Fig12})
	register(Experiment{ID: "table3", Title: "Accelerator profitability crossover points", Run: Table3})
}

func renderSweep(b *strings.Builder, pts []offload.SweepPoint) {
	b.WriteString(fmt.Sprintf("%-8s %14s %14s %14s\n", "Batch", "CPU (µs)", "LAKE (µs)", "LAKE sync (µs)"))
	for _, p := range pts {
		b.WriteString(fmt.Sprintf("%-8d %14.2f %14.2f %14.2f\n",
			p.Batch, us(p.CPU), us(p.LAKE), us(p.LAKESync)))
	}
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Fig8 reproduces Fig 8: LinnOS inference time for the base and augmented
// models across batch sizes, CPU vs LAKE.
func Fig8() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	rt.Clock().Advance(time.Second)
	var b strings.Builder
	b.WriteString(header("fig8", "LinnOS inference time by batch (paper Fig 8)"))
	for _, kind := range linnos.Kinds() {
		pts, err := linnos.InferenceSweep(rt, kind, linnos.Fig8Batches())
		if err != nil {
			return "", err
		}
		b.WriteString(fmt.Sprintf("\nModel %s (crossover at batch %d):\n", kind, linnos.Crossover(pts)))
		b.WriteString(fmt.Sprintf("%-8s %14s %14s %14s\n", "Batch", "CPU (µs)", "LAKE (µs)", "LAKE sync (µs)"))
		for _, p := range pts {
			b.WriteString(fmt.Sprintf("%-8d %14.2f %14.2f %14.2f\n",
				p.Batch, us(p.CPU), us(p.LAKE), us(p.LAKESync)))
		}
	}
	return b.String(), nil
}

// Fig9 reproduces Fig 9: Kleio page warmth classification time for batches
// of 20-1160 pages (the paper plots only the synchronous series because
// TensorFlow moves data itself).
func Fig9() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	cls, err := kleio.New(rt, 7)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header("fig9", "Kleio page warmth inference time (paper Fig 9)"))
	b.WriteString(fmt.Sprintf("%-8s %16s %16s\n", "Pages", "LAKE sync (ms)", "CPU (ms)"))
	for n := 20; n <= 1160; n += 120 {
		pages := make([]kleio.PageHistory, n)
		for i := range pages {
			for t := 0; t < kleio.HistoryLen; t++ {
				pages[i][t] = float32((i + t) % 40)
			}
		}
		_, lakeT, err := cls.ClassifyLAKE(pages)
		if err != nil {
			return "", err
		}
		_, cpuT := cls.ClassifyCPU(pages)
		b.WriteString(fmt.Sprintf("%-8d %16.1f %16.1f\n",
			n, float64(lakeT.Microseconds())/1e3, float64(cpuT.Microseconds())/1e3))
	}
	return b.String(), nil
}

// Fig10 reproduces Fig 10: MLLB classification time across batch sizes.
func Fig10() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	bal, err := mllb.New(rt, nn.New(10, mllb.Sizes()...))
	if err != nil {
		return "", err
	}
	pts, err := mllb.Sweep(bal, offload.StandardBatches())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header("fig10", "MLLB load balancing inference time (paper Fig 10)"))
	b.WriteString(fmt.Sprintf("Crossover at batch %d (Table 3: 256)\n", offload.Crossover(pts)))
	renderSweep(&b, pts)
	return b.String(), nil
}

// Fig11 reproduces Fig 11: KML readahead classification time across batch
// sizes.
func Fig11() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	cls, err := kml.New(rt, nn.New(11, kml.Sizes()...))
	if err != nil {
		return "", err
	}
	pts, err := kml.Sweep(cls, offload.StandardBatches())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header("fig11", "KML readahead inference time (paper Fig 11)"))
	b.WriteString(fmt.Sprintf("Crossover at batch %d (Table 3: 64)\n", offload.Crossover(pts)))
	renderSweep(&b, pts)
	return b.String(), nil
}

// Fig12 reproduces Fig 12: 4096 KNN queries against 16384 reference points,
// sweeping feature counts.
func Fig12() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	pts, err := malware.Fig12Sweep(rt, malware.Fig12Dims())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header("fig12", "malware detection KNN time (paper Fig 12)"))
	b.WriteString(fmt.Sprintf("%-8s %14s %14s %14s %12s %10s\n",
		"Features", "CPU (µs)", "LAKE (µs)", "LAKE sync", "Speedup", "Overhead"))
	var overheadSum float64
	for _, p := range pts {
		overhead := float64(p.LAKESync-p.Direct) / float64(p.Direct) * 100
		overheadSum += overhead
		b.WriteString(fmt.Sprintf("%-8d %14.0f %14.0f %14.0f %11.0fx %9.1f%%\n",
			p.Dim, us(p.CPU), us(p.LAKE), us(p.LAKESync),
			float64(p.CPU)/float64(p.LAKE), overhead))
	}
	b.WriteString(fmt.Sprintf("Average LAKE overhead vs direct user-space CUDA: %.1f%% (paper: 4.2%%)\n",
		overheadSum/float64(len(pts))))
	return b.String(), nil
}

// Table3 reproduces Table 3's crossover column by measuring each workload.
func Table3() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	rt.Clock().Advance(time.Second)
	var b strings.Builder
	b.WriteString(header("table3", "profitability crossover points (paper Table 3)"))
	b.WriteString(fmt.Sprintf("%-24s %-14s %10s %10s\n", "Application", "Algorithm", "Measured", "Paper"))

	linPts, err := linnos.InferenceSweep(rt, linnos.Base, linnos.Fig8Batches())
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("%-24s %-14s %10d %10d\n",
		"I/O latency prediction", "Neural Net", linnos.Crossover(linPts), 8))

	// Page warmth: GPU profitable from batch 1 (Table 3 row 2).
	kcls, err := kleio.New(rt, 3)
	if err != nil {
		return "", err
	}
	one := []kleio.PageHistory{{}}
	_, lakeT, err := kcls.ClassifyLAKE(one)
	if err != nil {
		return "", err
	}
	_, cpuT := kcls.ClassifyCPU(one)
	kCross := 1
	if lakeT >= cpuT {
		kCross = 0
	}
	b.WriteString(fmt.Sprintf("%-24s %-14s %10d %10d\n", "Page warmth", "LSTM", kCross, 1))

	bal, err := mllb.New(rt, nn.New(2, mllb.Sizes()...))
	if err != nil {
		return "", err
	}
	mPts, err := mllb.Sweep(bal, offload.StandardBatches())
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("%-24s %-14s %10d %10d\n",
		"Load balancing", "Neural Net", offload.Crossover(mPts), 256))

	kcl, err := kml.New(rt, nn.New(4, kml.Sizes()...))
	if err != nil {
		return "", err
	}
	kPts, err := kml.Sweep(kcl, offload.StandardBatches())
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("%-24s %-14s %10d %10d\n",
		"Filesystem prefetching", "Neural Net", offload.Crossover(kPts), 64))

	mw, err := malwareCrossover(rt)
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("%-24s %-14s %10d %10d\n", "Malware detection", "k-NN", mw, 128))
	b.WriteString("Filesystem encryption    -              16K/256K    16K/128K  (read/write block size)\n")
	return b.String(), nil
}

// malwareCrossover finds the query-batch size at which GPU KNN beats CPU.
// The probe uses a compact online reference set (64 points, 8 counters) —
// the cheapest per-query CPU configuration, i.e. the hardest case for the
// GPU; at the full 16384-point database the GPU wins from batch 1.
func malwareCrossover(rt *core.Runtime) (int, error) {
	w, err := malware.NewWorkload(8, 1)
	if err != nil {
		return 0, err
	}
	refs, labels := w.Dataset(64)
	det, err := malware.NewDetector(rt, refs, labels, malware.K, true)
	if err != nil {
		return 0, err
	}
	pts, err := offload.Sweep(det.Runner(), offload.StandardBatches(), func(i int) []float32 {
		return w.Sample(i%2 == 1)
	})
	if err != nil {
		return 0, err
	}
	return offload.Crossover(pts), nil
}
