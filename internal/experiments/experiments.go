// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§7). Each experiment builds its own LAKE runtime, runs the
// workload, and renders the same rows/series the paper reports; cmd/lakebench
// and the repository's benchmark suite are thin wrappers around this package.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-versus-measured values produced by these functions.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lakego/internal/core"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Run produces the printable table/series.
	Run func() (string, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// IDs lists registered experiments in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup returns the experiment for id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes one experiment by id.
func Run(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown id %q (have: %s)", id, strings.Join(IDs(), ", "))
	}
	return e.Run()
}

// RunAll executes every experiment, concatenating outputs.
func RunAll() (string, error) {
	var b strings.Builder
	for _, id := range IDs() {
		out, err := Run(id)
		if err != nil {
			return b.String(), fmt.Errorf("%s: %w", id, err)
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// newRuntime boots a default LAKE runtime for one experiment.
func newRuntime() (*core.Runtime, error) {
	return core.New(core.DefaultConfig())
}

// header renders an experiment banner.
func header(id, title string) string {
	line := strings.Repeat("=", 72)
	return fmt.Sprintf("%s\n%s — %s\n%s\n", line, id, title, line)
}
