package experiments

import (
	"fmt"
	"strings"
	"time"

	"lakego/internal/ecryptfs"
)

func init() {
	register(Experiment{ID: "fig14", Title: "eCryptfs throughput by block size and engine", Run: Fig14})
	register(Experiment{ID: "fig15", Title: "CPU/GPU utilization reading 2 GiB through eCryptfs", Run: Fig15})
}

// Fig14 reproduces Fig 14: sequential read/write throughput of AES-GCM
// eCryptfs with each cipher engine across block sizes.
func Fig14() (string, error) {
	m := ecryptfs.DefaultModel()
	var b strings.Builder
	b.WriteString(header("fig14", "eCryptfs throughput (paper Fig 14)"))
	b.WriteString(fmt.Sprintf("%-10s", "Block"))
	for _, e := range ecryptfs.Engines() {
		b.WriteString(fmt.Sprintf(" %10s-R %10s-W", e, e))
	}
	b.WriteString("   (MB/s)\n")
	for _, s := range ecryptfs.Fig14BlockSizes() {
		b.WriteString(fmt.Sprintf("%-10s", sizeLabel(s)))
		for _, e := range ecryptfs.Engines() {
			b.WriteString(fmt.Sprintf(" %12.0f %12.0f",
				m.Throughput(e, s, false)/1e6, m.Throughput(e, s, true)/1e6))
		}
		b.WriteString("\n")
	}
	b.WriteString("Targets: CPU ~142/136 flat; AES-NI peaks 670/560; LAKE passes AES-NI\n" +
		"above 16K reads / 128K writes and reaches ~840 MB/s; GPU+AES-NI +31%/+22%.\n")
	return b.String(), nil
}

// Fig15 reproduces Fig 15: utilization traces while reading a 2 GiB file
// sequentially at a 2 MiB block size with each engine.
func Fig15() (string, error) {
	m := ecryptfs.DefaultModel()
	const fileBytes = 2 << 30
	const block = 2 << 20
	horizon := 18 * time.Second
	var b strings.Builder
	b.WriteString(header("fig15", "utilization during 2 GiB read (paper Fig 15)"))
	for _, e := range []ecryptfs.Engine{ecryptfs.EngineCPU, ecryptfs.EngineAESNI, ecryptfs.EngineLAKE} {
		pts := ecryptfs.UtilizationTrace(m, e, fileBytes, block, horizon)
		var cpuSum, apiSum, gpuSum float64
		active := 0
		for _, p := range pts {
			if p.KernelCPU == 0 && p.UserAPI == 0 && p.GPU == 0 {
				continue
			}
			cpuSum += float64(p.KernelCPU)
			apiSum += float64(p.UserAPI)
			gpuSum += float64(p.GPU)
			active++
		}
		dur := time.Duration(active) * 250 * time.Millisecond
		b.WriteString(fmt.Sprintf("%-8s: duration %5.1fs  kernel CPU %4.1f%%  lakeD API %4.1f%%  GPU %4.1f%%\n",
			e, dur.Seconds(),
			cpuSum/float64(active), apiSum/float64(active), gpuSum/float64(active)))
	}
	b.WriteString("Paper averages: CPU 56%, AES-NI 24%, LAKE ~20% combined CPU + busy GPU.\n")
	b.WriteString("\nLAKE utilization timeline (250ms samples):\n")
	b.WriteString(fmt.Sprintf("%-10s %12s %12s %8s\n", "Time (s)", "Kernel CPU", "lakeD API", "GPU"))
	for i, p := range ecryptfs.UtilizationTrace(m, ecryptfs.EngineLAKE, fileBytes, block, horizon) {
		if i%4 != 0 {
			continue
		}
		b.WriteString(fmt.Sprintf("%-10.2f %11d%% %11d%% %7d%%\n",
			p.T.Seconds(), p.KernelCPU, p.UserAPI, p.GPU))
	}
	return b.String(), nil
}
