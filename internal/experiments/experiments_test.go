package experiments

import (
	"strings"
	"testing"
)

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table2", "table3", "table4",
		"fig1", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15",
		"x-automl", "x-multigpu", "x-readahead", "x-tiering",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registered %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestLookupAndRunUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id resolved")
	}
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown id ran")
	}
	e, ok := Lookup("table2")
	if !ok || e.Title == "" {
		t.Fatal("table2 lookup failed")
	}
}

// Every cheap experiment must run and produce non-trivial output. The
// heavyweight ones (fig7, fig9, fig12) are exercised by the benchmark suite
// and their own package tests.
func TestCheapExperimentsProduceOutput(t *testing.T) {
	for _, id := range []string{"table2", "table4", "fig1", "fig6", "fig10", "fig11", "fig13", "fig14", "fig15"} {
		out, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 100 || !strings.Contains(out, id) {
			t.Fatalf("%s produced suspicious output:\n%s", id, out)
		}
	}
}

func TestTable3ReproducesCrossovers(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 sweeps every workload")
	}
	out, err := Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"I/O latency prediction", "Page warmth", "Load balancing",
		"Filesystem prefetching", "Malware detection", "Filesystem encryption",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing row %q:\n%s", want, out)
		}
	}
}

func TestFig8RunsFull(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 sweeps three model variants")
	}
	out, err := Run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "crossover at batch 8") {
		t.Fatalf("fig8 lost the batch-8 crossover:\n%s", out)
	}
}

func TestFig7ShortReplayShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 replays the full workload matrix")
	}
	out, err := Fig7WithLength(1500)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Mixed+") || !strings.Contains(out, "Azure*") {
		t.Fatalf("fig7 output missing workloads:\n%s", out)
	}
}

// The heavyweight experiments run in full (non-short) mode so every
// registered artifact is executable end to end.
func TestHeavyExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiments take seconds each")
	}
	for _, id := range []string{"fig9", "fig12", "x-automl", "x-tiering", "x-multigpu", "x-readahead"} {
		out, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 100 || !strings.Contains(out, id) {
			t.Fatalf("%s produced suspicious output:\n%s", id, out)
		}
	}
}
