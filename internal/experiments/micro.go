package experiments

import (
	"fmt"
	"strings"

	"lakego/internal/boundary"
	"lakego/internal/trace"
)

func init() {
	register(Experiment{ID: "table2", Title: "Kernel->user channel call time and doorbell latency", Run: Table2})
	register(Experiment{ID: "fig6", Title: "Netlink message round-trip overhead vs command size", Run: Fig6})
	register(Experiment{ID: "table4", Title: "Generated trace characteristics", Run: Table4})
}

// Table2 reproduces Table 2: average call time and latency to send a
// doorbell message from kernel to user for each channel mechanism.
func Table2() (string, error) {
	var b strings.Builder
	b.WriteString(header("table2", "channel doorbell costs (paper Table 2)"))
	b.WriteString(fmt.Sprintf("%-16s", ""))
	for _, k := range boundary.Kinds() {
		b.WriteString(fmt.Sprintf("%12s", k))
	}
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("%-16s", "Call time (µs)"))
	for _, k := range boundary.Kinds() {
		b.WriteString(fmt.Sprintf("%12d", boundary.CallTime(k).Microseconds()))
	}
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("%-16s", "Latency (µs)"))
	for _, k := range boundary.Kinds() {
		b.WriteString(fmt.Sprintf("%12d", boundary.DoorbellLatency(k).Microseconds()))
	}
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("%-16s", "CPU burn (µs)"))
	for _, k := range boundary.Kinds() {
		b.WriteString(fmt.Sprintf("%12d", boundary.CPUBurn(k, boundary.DoorbellLatency(k)).Microseconds()))
	}
	b.WriteString("\n(CPU burn while waiting one doorbell: mmap spins a core, hence Netlink is chosen)\n")
	return b.String(), nil
}

// Fig6 reproduces Fig 6: round-trip cost of Netlink command messages from
// 128 B to 32 KiB.
func Fig6() (string, error) {
	var b strings.Builder
	b.WriteString(header("fig6", "netlink message overhead by size (paper Fig 6)"))
	b.WriteString(fmt.Sprintf("%-14s %12s\n", "Command size", "Time (µs)"))
	for _, size := range []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768} {
		d := boundary.MessageRoundTrip(boundary.Netlink, size)
		b.WriteString(fmt.Sprintf("%-14s %12.2f\n", sizeLabel(size), float64(d.Microseconds())))
	}
	return b.String(), nil
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table4 reproduces Table 4: the characteristics of the generated traces.
func Table4() (string, error) {
	var b strings.Builder
	b.WriteString(header("table4", "generated trace characteristics (paper Table 4)"))
	b.WriteString(fmt.Sprintf("%-8s %10s %22s %24s\n",
		"Trace", "Avg IOPS", "Read/Write size (KB)", "Min/Max arrival (µs)"))
	for i, p := range trace.Profiles() {
		s := trace.Measure(p.Generate(int64(40+i), 20000))
		b.WriteString(fmt.Sprintf("%-8s %10.0f %12.0f/%-9.0f %14d/%-9d\n",
			p.Name, s.AvgIOPS, s.AvgReadKB, s.AvgWriteKB,
			s.MinArrival.Microseconds(), s.MaxArrival.Microseconds()))
	}
	return b.String(), nil
}
