package experiments

import (
	"fmt"
	"strings"

	"lakego/internal/contention"
	"lakego/internal/kleio"
	"lakego/internal/kml"
	"lakego/internal/linnos"
	"lakego/internal/trace"
)

// Extension experiments (prefixed "x-"): results beyond the paper's
// figures, built on the same substrates. See DESIGN.md's extension
// inventory.

func init() {
	register(Experiment{ID: "x-automl", Title: "Benefit-aware ML modulation (§7.1 future work)", Run: XAutoML})
	register(Experiment{ID: "x-tiering", Title: "Two-tier page placement: oracle vs history scheduler", Run: XTiering})
	register(Experiment{ID: "x-multigpu", Title: "Second GPU as contention overflow target", Run: XMultiGPU})
	register(Experiment{ID: "x-readahead", Title: "Closed-loop adaptive readahead vs fixed", Run: XReadahead})
}

// XAutoML compares always-on ML with the benefit monitor on a workload
// where ML hurts (Azure*) and one where it helps (Mixed+).
func XAutoML() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	net, err := linnos.TrainedNetwork(linnos.Base)
	if err != nil {
		return "", err
	}
	pred, err := linnos.NewPredictor(rt, linnos.Base, net)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString(header("x-automl", "ML on/off modulation (paper §7.1 future work)"))
	b.WriteString(fmt.Sprintf("%-10s %12s %12s %12s %10s %8s\n",
		"Workload", "Baseline", "Always-ML", "Modulated", "ML used", "Final"))
	for _, w := range []linnos.Workload{
		linnos.SingleTraceWorkload(trace.Azure(), 3, 3000, 11),
		linnos.MixedWorkload("Mixed+", 3000, 15, 3),
	} {
		base, err := linnos.Replay(rt, nil, w, linnos.DefaultReplayConfig(linnos.ModeBaseline))
		if err != nil {
			return "", err
		}
		always, err := linnos.Replay(rt, pred, w, linnos.DefaultReplayConfig(linnos.ModeCPU))
		if err != nil {
			return "", err
		}
		auto, err := linnos.ReplayAutoML(pred, w, linnos.DefaultReplayConfig(linnos.ModeCPU), linnos.DefaultBenefitConfig())
		if err != nil {
			return "", err
		}
		state := "off"
		if auto.FinalEnabled {
			state = "on"
		}
		b.WriteString(fmt.Sprintf("%-10s %10.0fµs %10.0fµs %10.0fµs %9.0f%% %8s\n",
			w.Name, us(base.AvgRead), us(always.AvgRead), us(auto.AvgRead),
			auto.MLFraction*100, state))
	}
	b.WriteString("The monitor keeps ML engaged where reissue pays (Mixed+) and retires it\n" +
		"where it only adds inference latency (single traces).\n")
	return b.String(), nil
}

// XTiering runs the Kleio-style page placement simulation with the
// history-based baseline and the oracle, bracketing what a learned
// scheduler can gain.
func XTiering() (string, error) {
	var b strings.Builder
	b.WriteString(header("x-tiering", "two-tier page placement (Kleio's setting, §7.2)"))
	b.WriteString(fmt.Sprintf("%-22s %14s %12s\n", "Scheduler", "Fast-tier hits", "Migrations"))
	const pages, capacity, intervals = 90, 60, 128
	hist := kleio.NewAccessPattern(5, pages)
	hr, err := kleio.TierSim(hist, kleio.HistoryBased(15), pages, capacity, intervals)
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("%-22s %13.1f%% %12d\n", "history-based", hr.FastHitRatio*100, hr.Migrations))

	sched, acc, err := kleio.TrainScheduler(5, 30, 28, 12, 14)
	if err != nil {
		return "", err
	}
	lp := kleio.NewAccessPattern(5, pages)
	lr, err := kleio.TierSim(lp, sched, pages, capacity, intervals)
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("%-22s %13.1f%% %12d   (trained to %.0f%%)\n",
		"LSTM (trained, BPTT)", lr.FastHitRatio*100, lr.Migrations, acc*100))

	op := kleio.NewAccessPattern(5, pages)
	or, err := kleio.TierSim(op, kleio.NewOracle(op), pages, capacity, intervals)
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("%-22s %13.1f%% %12d\n", "oracle (upper bound)", or.FastHitRatio*100, or.Migrations))
	b.WriteString("The trained LSTM anticipates periodic pages' phase flips that the history\n" +
		"heuristic chases one interval late — Kleio's §7.2 motivation, end to end.\n")
	return b.String(), nil
}

// XMultiGPU compares single-GPU CPU-fallback (Fig 13) with a two-GPU
// preference-ladder policy: the kernel overflows to the second device
// instead of degrading.
func XMultiGPU() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	single := contention.Summarize(contention.Fig13(rt))

	rt2, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt2.Close()
	multi := contention.SummarizeMultiGPU(contention.Fig13MultiGPU(rt2))

	var b strings.Builder
	b.WriteString(header("x-multigpu", "two-device overflow vs CPU fallback (testbed has 2x A100)"))
	b.WriteString(fmt.Sprintf("%-28s %14s %14s\n", "", "single GPU", "two GPUs"))
	b.WriteString(fmt.Sprintf("%-28s %13.0f%% %13.0f%%\n",
		"predictor at full speed*", (1-single.CPUFraction)*100, multi.ContendedFullSpeed*100))
	b.WriteString(fmt.Sprintf("%-28s %14v %14v\n", "user hashing stable",
		single.HashingStable, multi.HashingStable))
	b.WriteString(fmt.Sprintf("%-28s %13.0f%% %13.0f%%\n", "steps on GPU1",
		0.0, multi.GPU1Frac*100))
	b.WriteString("*during the contended window. With a second device the kernel predictor\n" +
		"rides out user-space contention at GPU throughput instead of the 0.45x CPU\n" +
		"fallback, while the user process keeps its device.\n")
	return b.String(), nil
}

// XReadahead runs the deployed KML loop: the trained classifier drives
// readahead for a phase-switching application, against fixed settings.
func XReadahead() (string, error) {
	rt, err := newRuntime()
	if err != nil {
		return "", err
	}
	defer rt.Close()
	net, acc, err := kml.Train(13, kml.Dataset(13, 50), 12)
	if err != nil {
		return "", err
	}
	cls, err := kml.New(rt, net)
	if err != nil {
		return "", err
	}
	phases := []kml.Phase{
		{Pattern: kml.Sequential, Length: 2048},
		{Pattern: kml.Random, Length: 2048},
		{Pattern: kml.Sequential, Length: 2048},
		{Pattern: kml.Zipf, Length: 2048},
	}
	stream := kml.PhaseWorkload(99, phases)
	adaptive, err := kml.RunAdaptive(cls, kml.NewCacheSim(512), stream, nil)
	if err != nil {
		return "", err
	}
	fixedBig := kml.RunFixed(kml.NewCacheSim(512), stream, 64)
	fixedOff := kml.RunFixed(kml.NewCacheSim(512), stream, 0)

	var b strings.Builder
	b.WriteString(header("x-readahead", "classifier-driven readahead on a phase-switching app (§7.4)"))
	b.WriteString(fmt.Sprintf("%-26s %14s %10s\n", "Configuration", "Accesses/s", "Hit ratio"))
	b.WriteString(fmt.Sprintf("%-26s %14.0f %9.1f%%\n", "fixed readahead = 64", fixedBig.Throughput, fixedBig.HitRatio*100))
	b.WriteString(fmt.Sprintf("%-26s %14.0f %9.1f%%\n", "fixed readahead = 0", fixedOff.Throughput, fixedOff.HitRatio*100))
	b.WriteString(fmt.Sprintf("%-26s %14.0f %9.1f%%   (%d reclassifications, %v inference)\n",
		"KML adaptive (in loop)", adaptive.Throughput, adaptive.HitRatio*100,
		adaptive.Reclassifications, adaptive.InferenceTime))
	b.WriteString(fmt.Sprintf("Classifier trained to %.0f%%; the adaptive loop beats both fixed settings\n"+
		"(%.1fx over prefetch-always, %.1fx over prefetch-never) by following phases.\n",
		acc*100, adaptive.Throughput/fixedBig.Throughput, adaptive.Throughput/fixedOff.Throughput))
	return b.String(), nil
}
