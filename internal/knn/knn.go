// Package knn implements the k-nearest-neighbours classifier behind the
// malware detection workload (§7.5: "a kernel driver which uses a KNN
// classifier to classify user programs as malicious or benign", after
// Demme et al.'s performance-counter detector).
//
// Queries compute real Euclidean distances over the reference database and
// take a majority vote among the k nearest labels. FLOP accounting feeds
// the GPU cost model: the evaluation's database of 16,384 reference points
// with up to 1,024 features per sample (Fig 12) makes brute-force KNN a
// massively parallel, GPU-friendly kernel.
package knn

import (
	"fmt"
	"sort"
)

// Classifier is an immutable reference database with integer labels.
type Classifier struct {
	dim    int
	points [][]float32
	labels []int
	k      int
}

// New builds a classifier over the given reference points. k is the
// neighbourhood size (the paper uses 16).
func New(points [][]float32, labels []int, k int) (*Classifier, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("knn: empty reference set")
	}
	if len(points) != len(labels) {
		return nil, fmt.Errorf("knn: %d points but %d labels", len(points), len(labels))
	}
	if k <= 0 || k > len(points) {
		return nil, fmt.Errorf("knn: k=%d invalid for %d points", k, len(points))
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("knn: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("knn: point %d has %d dims, want %d", i, len(p), dim)
		}
	}
	return &Classifier{dim: dim, points: points, labels: labels, k: k}, nil
}

// Dim returns the feature dimensionality.
func (c *Classifier) Dim() int { return c.dim }

// Size returns the reference database size.
func (c *Classifier) Size() int { return len(c.points) }

// K returns the neighbourhood size.
func (c *Classifier) K() int { return c.k }

// Classify returns the majority label among the k nearest reference points
// to q (squared Euclidean distance; the monotone transform preserves
// neighbour order).
func (c *Classifier) Classify(q []float32) (int, error) {
	if len(q) != c.dim {
		return 0, fmt.Errorf("knn: query has %d dims, want %d", len(q), c.dim)
	}
	type nb struct {
		d     float32
		label int
	}
	// Keep the k best in a slice with insertion; k is small (16).
	best := make([]nb, 0, c.k)
	worst := float32(0)
	for i, p := range c.points {
		var d float32
		for j, v := range p {
			diff := v - q[j]
			d += diff * diff
		}
		if len(best) < c.k {
			best = append(best, nb{d, c.labels[i]})
			if d > worst || len(best) == 1 {
				worst = d
			}
			if len(best) == c.k {
				sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
				worst = best[c.k-1].d
			}
			continue
		}
		if d >= worst {
			continue
		}
		// Insert in sorted position, dropping the current worst.
		pos := sort.Search(c.k, func(a int) bool { return best[a].d > d })
		copy(best[pos+1:], best[pos:c.k-1])
		best[pos] = nb{d, c.labels[i]}
		worst = best[c.k-1].d
	}
	votes := make(map[int]int)
	for _, b := range best {
		votes[b.label]++
	}
	winner, winVotes := 0, -1
	for label, n := range votes {
		if n > winVotes || (n == winVotes && label < winner) {
			winner, winVotes = label, n
		}
	}
	return winner, nil
}

// ClassifyBatch classifies a batch of queries.
func (c *Classifier) ClassifyBatch(qs [][]float32) ([]int, error) {
	out := make([]int, len(qs))
	for i, q := range qs {
		label, err := c.Classify(q)
		if err != nil {
			return nil, err
		}
		out[i] = label
	}
	return out, nil
}

// Flops returns the FLOP count of classifying `queries` samples:
// 3 FLOPs (sub, mul, add) per reference-point dimension per query.
func (c *Classifier) Flops(queries int) float64 {
	return 3 * float64(queries) * float64(len(c.points)) * float64(c.dim)
}
