package knn

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	pts := [][]float32{{1, 2}, {3, 4}}
	labels := []int{0, 1}
	cases := []struct {
		name   string
		pts    [][]float32
		labels []int
		k      int
	}{
		{"empty", nil, nil, 1},
		{"len mismatch", pts, []int{0}, 1},
		{"k zero", pts, labels, 0},
		{"k too big", pts, labels, 3},
		{"dim mismatch", [][]float32{{1, 2}, {3}}, labels, 1},
		{"zero dim", [][]float32{{}, {}}, labels, 1},
	}
	for _, c := range cases {
		if _, err := New(c.pts, c.labels, c.k); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
	if _, err := New(pts, labels, 2); err != nil {
		t.Fatalf("valid New failed: %v", err)
	}
}

func TestClassifyNearest(t *testing.T) {
	c, err := New([][]float32{{0, 0}, {10, 10}}, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Classify([]float32{1, 1}); got != 0 {
		t.Fatalf("Classify near origin = %d, want 0", got)
	}
	if got, _ := c.Classify([]float32{9, 9}); got != 1 {
		t.Fatalf("Classify near (10,10) = %d, want 1", got)
	}
}

func TestClassifyMajorityVote(t *testing.T) {
	// Three points of label 1 near the query, two closer of label 0? No:
	// with k=3, two label-1 points at distance ~1 and one label-0 at 0
	// votes 2:1 for label 1.
	pts := [][]float32{{0, 0}, {1, 0}, {0, 1}, {50, 50}}
	labels := []int{0, 1, 1, 0}
	c, _ := New(pts, labels, 3)
	if got, _ := c.Classify([]float32{0, 0}); got != 1 {
		t.Fatalf("majority vote = %d, want 1", got)
	}
}

func TestClassifyDimMismatch(t *testing.T) {
	c, _ := New([][]float32{{1, 2}}, []int{0}, 1)
	if _, err := c.Classify([]float32{1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestClassifyBatch(t *testing.T) {
	c, _ := New([][]float32{{0}, {10}}, []int{7, 9}, 1)
	got, err := c.ClassifyBatch([][]float32{{1}, {9}, {-5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{7, 9, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch = %v, want %v", got, want)
		}
	}
	if _, err := c.ClassifyBatch([][]float32{{1, 2}}); err == nil {
		t.Fatal("batch dim mismatch accepted")
	}
}

func TestAccessors(t *testing.T) {
	c, _ := New([][]float32{{1, 2, 3}, {4, 5, 6}}, []int{0, 1}, 2)
	if c.Dim() != 3 || c.Size() != 2 || c.K() != 2 {
		t.Fatalf("Dim/Size/K = %d/%d/%d", c.Dim(), c.Size(), c.K())
	}
}

func TestFlops(t *testing.T) {
	c, _ := New([][]float32{{1, 2}, {3, 4}}, []int{0, 1}, 1)
	if got := c.Flops(10); got != 3*10*2*2 {
		t.Fatalf("Flops(10) = %v, want 120", got)
	}
}

// Property: the classifier agrees with a brute-force sort-based oracle.
func TestQuickAgreesWithOracle(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 5
		dim := rng.Intn(4) + 1
		pts := make([][]float32, n)
		labels := make([]int, n)
		for i := range pts {
			p := make([]float32, dim)
			for j := range p {
				p[j] = rng.Float32() * 10
			}
			pts[i] = p
			labels[i] = rng.Intn(3)
		}
		k := int(kRaw)%n + 1
		c, err := New(pts, labels, k)
		if err != nil {
			return false
		}
		q := make([]float32, dim)
		for j := range q {
			q[j] = rng.Float32() * 10
		}

		// Oracle: full sort by distance, majority among first k with
		// ties resolved identically (stable distance sort + lowest label).
		type nb struct {
			d     float32
			idx   int
			label int
		}
		nbs := make([]nb, n)
		for i, p := range pts {
			var d float32
			for j := range p {
				diff := p[j] - q[j]
				d += diff * diff
			}
			nbs[i] = nb{d, i, labels[i]}
		}
		sort.SliceStable(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })
		votes := map[int]int{}
		for _, b := range nbs[:k] {
			votes[b.label]++
		}
		winner, winVotes := 0, -1
		for label, v := range votes {
			if v > winVotes || (v == winVotes && label < winner) {
				winner, winVotes = label, v
			}
		}

		got, err := c.Classify(q)
		if err != nil {
			return false
		}
		// Tie-breaking on equal distances at the k-boundary can
		// legitimately differ; accept when vote counts allow either.
		if got == winner {
			return true
		}
		// Check boundary tie: distance of k-th equals (k+1)-th.
		if k < n && nbs[k-1].d == nbs[k].d {
			return true
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
