package features

import (
	"encoding/binary"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"lakego/internal/policy"
)

func ioSchema() Schema {
	return Schema{
		{Key: "pend_ios", Size: 8, Entries: 1},
		{Key: "io_latency", Size: 8, Entries: 4}, // last 4 latencies (§5.2 idiom)
	}
}

func newStoreAndRegistry(t *testing.T) (*Store, *Registry) {
	t.Helper()
	s := NewStore()
	r, err := s.CreateRegistry("sda1", "bio_latency_prediction", ioSchema(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func u64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func TestSchemaValidate(t *testing.T) {
	bad := []Schema{
		{},
		{{Key: "", Size: 8, Entries: 1}},
		{{Key: "a", Size: 0, Entries: 1}},
		{{Key: "a", Size: 8, Entries: 0}},
		{{Key: "a", Size: 8, Entries: 1}, {Key: "a", Size: 4, Entries: 1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %d validated, want error", i)
		}
	}
	if err := ioSchema().Validate(); err != nil {
		t.Errorf("good schema rejected: %v", err)
	}
}

func TestCreateRegistryValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateRegistry("", "sys", ioSchema(), 4); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.CreateRegistry("n", "sys", ioSchema(), 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := s.CreateRegistry("n", "sys", Schema{}, 4); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := s.CreateRegistry("n", "sys", ioSchema(), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRegistry("n", "sys", ioSchema(), 4); err == nil {
		t.Error("duplicate registry accepted")
	}
}

func TestDestroyRegistry(t *testing.T) {
	s, _ := newStoreAndRegistry(t)
	if s.Registries() != 1 {
		t.Fatalf("Registries = %d, want 1", s.Registries())
	}
	if err := s.DestroyRegistry("sda1", "bio_latency_prediction"); err != nil {
		t.Fatal(err)
	}
	if err := s.DestroyRegistry("sda1", "bio_latency_prediction"); err == nil {
		t.Fatal("double destroy succeeded")
	}
	if _, ok := s.Registry("sda1", "bio_latency_prediction"); ok {
		t.Fatal("registry still resolvable after destroy")
	}
}

func TestCaptureCommitRetrieve(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	r.BeginCapture(10)
	if _, err := r.CaptureFeatureIncr("pend_ios", 3); err != nil {
		t.Fatal(err)
	}
	if err := r.CaptureFeature("io_latency", u64(250)); err != nil {
		t.Fatal(err)
	}
	v := r.CommitCapture(20)
	if v.TsBegin != 10 || v.TsEnd != 20 {
		t.Fatalf("ts = [%v, %v], want [10, 20]", v.TsBegin, v.TsEnd)
	}
	if got := int64(binary.LittleEndian.Uint64(v.Values["pend_ios"])); got != 3 {
		t.Fatalf("pend_ios = %d, want 3", got)
	}
	if got := int64(binary.LittleEndian.Uint64(v.Values["io_latency"][:8])); got != 250 {
		t.Fatalf("io_latency[0] = %d, want 250", got)
	}
	all := r.GetFeatures(NullTS)
	if len(all) != 1 {
		t.Fatalf("GetFeatures(NullTS) = %d vectors, want 1", len(all))
	}
}

func TestCaptureRejectsUnknownKeyAndOversize(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	if err := r.CaptureFeature("nope", u64(1)); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := r.CaptureFeatureIncr("nope", 1); err == nil {
		t.Error("unknown incr key accepted")
	}
	if err := r.CaptureFeature("pend_ios", make([]byte, 16)); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestHistoryShifting(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	// Commit latencies 100, 200, 300; io_latency keeps 4 entries.
	for i, lat := range []int64{100, 200, 300} {
		r.BeginCapture(time.Duration(i * 10))
		r.CaptureFeature("io_latency", u64(lat))
		r.CommitCapture(time.Duration(i*10 + 5))
	}
	vs := r.GetFeatures(NullTS)
	last := vs[len(vs)-1]
	hist := last.Values["io_latency"]
	want := []int64{300, 200, 100, 0}
	for i, w := range want {
		got := int64(binary.LittleEndian.Uint64(hist[8*i:]))
		if got != w {
			t.Fatalf("history[%d] = %d, want %d (full hist: % x)", i, got, w, hist)
		}
	}
}

func TestRunningCountersPersistAcrossCommits(t *testing.T) {
	// The Listing 4/5 idiom: pend_ios is incremented on issue and
	// decremented on completion, across many vectors.
	_, r := newStoreAndRegistry(t)
	r.BeginCapture(0)
	r.CaptureFeatureIncr("pend_ios", 1) // issue
	r.CommitCapture(1)
	r.BeginCapture(1)
	r.CaptureFeatureIncr("pend_ios", 1)  // issue
	r.CaptureFeatureIncr("pend_ios", -1) // completion of the first
	v := r.CommitCapture(2)
	if got := int64(binary.LittleEndian.Uint64(v.Values["pend_ios"])); got != 1 {
		t.Fatalf("pend_ios = %d, want 1 (2 issued - 1 completed)", got)
	}
}

func TestGetFeaturesByTimestamp(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	for i := 0; i < 5; i++ {
		r.BeginCapture(time.Duration(i * 100))
		r.CaptureFeatureIncr("pend_ios", 1)
		r.CommitCapture(time.Duration(i*100 + 50))
	}
	// Vectors end at 50, 150, 250, 350, 450.
	got := r.GetFeatures(250)
	if len(got) != 3 {
		t.Fatalf("GetFeatures(250) = %d vectors, want 3", len(got))
	}
	if got[0].TsEnd != 50 || got[2].TsEnd != 250 {
		t.Fatalf("unexpected batch: ends %v, %v", got[0].TsEnd, got[2].TsEnd)
	}
}

func TestTruncatePreservesNewestWithHistory(t *testing.T) {
	_, r := newStoreAndRegistry(t) // schema has history
	for i := 0; i < 4; i++ {
		r.BeginCapture(time.Duration(i))
		r.CommitCapture(time.Duration(i + 1))
	}
	dropped := r.Truncate(NullTS)
	if dropped != 3 {
		t.Fatalf("Truncate dropped %d, want 3", dropped)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (most recent preserved for history)", r.Len())
	}
}

func TestTruncateClearsFullyWithoutHistory(t *testing.T) {
	s := NewStore()
	r, err := s.CreateRegistry("dev", "sys", Schema{{Key: "x", Size: 8, Entries: 1}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r.BeginCapture(time.Duration(i))
		r.CommitCapture(time.Duration(i + 1))
	}
	if dropped := r.Truncate(NullTS); dropped != 4 {
		t.Fatalf("Truncate dropped %d, want 4", dropped)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
}

func TestTruncateByTimestamp(t *testing.T) {
	s := NewStore()
	r, _ := s.CreateRegistry("dev", "sys", Schema{{Key: "x", Size: 8, Entries: 1}}, 8)
	for i := 0; i < 5; i++ {
		r.BeginCapture(time.Duration(i * 100))
		r.CommitCapture(time.Duration(i*100 + 50))
	}
	if dropped := r.Truncate(250); dropped != 3 {
		t.Fatalf("Truncate(250) dropped %d, want 3", dropped)
	}
	remaining := r.GetFeatures(NullTS)
	if len(remaining) != 2 || remaining[0].TsEnd != 350 {
		t.Fatalf("remaining = %d vectors, first end %v", len(remaining), remaining[0].TsEnd)
	}
}

func TestWindowEviction(t *testing.T) {
	s := NewStore()
	r, _ := s.CreateRegistry("dev", "sys", Schema{{Key: "x", Size: 8, Entries: 1}}, 3)
	for i := 0; i < 10; i++ {
		r.BeginCapture(time.Duration(i))
		r.CommitCapture(time.Duration(i))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want window 3", r.Len())
	}
	if r.Commits() != 10 {
		t.Fatalf("Commits = %d, want 10", r.Commits())
	}
}

func TestScoreFeaturesWithPolicyRouting(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	var cpuCalls, gpuCalls int
	r.RegisterClassifier(ArchCPU, func(batch []Vector) ([]float32, error) {
		cpuCalls++
		return make([]float32, len(batch)), nil
	})
	r.RegisterClassifier(ArchGPU, func(batch []Vector) ([]float32, error) {
		gpuCalls++
		return make([]float32, len(batch)), nil
	})
	// Policy: GPU for batches >= 4.
	r.RegisterPolicy(func(b int) policy.Decision {
		if b >= 4 {
			return policy.UseGPU
		}
		return policy.UseCPU
	})

	mkBatch := func(n int) []Vector {
		for i := 0; i < n; i++ {
			r.BeginCapture(0)
			r.CommitCapture(0)
		}
		return r.GetFeatures(NullTS)
	}

	if _, arch, err := r.ScoreFeatures(mkBatch(2)); err != nil || arch != ArchCPU {
		t.Fatalf("small batch: arch=%v err=%v, want CPU", arch, err)
	}
	r.Truncate(NullTS)
	if _, arch, err := r.ScoreFeatures(mkBatch(8)); err != nil || arch != ArchGPU {
		t.Fatalf("large batch: arch=%v err=%v, want GPU", arch, err)
	}
	if cpuCalls != 1 || gpuCalls != 1 {
		t.Fatalf("calls cpu=%d gpu=%d, want 1,1", cpuCalls, gpuCalls)
	}
}

func TestScoreFeaturesFallsBackToCPU(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	r.RegisterClassifier(ArchCPU, func(batch []Vector) ([]float32, error) {
		return make([]float32, len(batch)), nil
	})
	r.RegisterPolicy(func(int) policy.Decision { return policy.UseGPU })
	r.BeginCapture(0)
	r.CommitCapture(0)
	_, arch, err := r.ScoreFeatures(r.GetFeatures(NullTS))
	if err != nil || arch != ArchCPU {
		t.Fatalf("arch=%v err=%v, want CPU fallback when no GPU classifier", arch, err)
	}
}

func TestScoreFeaturesErrors(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	if _, _, err := r.ScoreFeatures([]Vector{{}}); err == nil {
		t.Error("no classifier: want error")
	}
	r.RegisterClassifier(ArchCPU, func(batch []Vector) ([]float32, error) {
		return []float32{1, 2, 3}, nil // wrong length
	})
	if _, _, err := r.ScoreFeatures([]Vector{{}}); err == nil {
		t.Error("mismatched score count: want error")
	}
	if scores, _, err := r.ScoreFeatures(nil); err != nil || scores != nil {
		t.Error("empty batch should score to nil without error")
	}
	if err := r.RegisterClassifier(ArchCPU, nil); err == nil {
		t.Error("nil classifier accepted")
	}
	if err := r.RegisterPolicy(nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestConcurrentCaptureFromManyThreads(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	r.BeginCapture(0)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.CaptureFeatureIncr("pend_ios", 1)
				r.CaptureFeatureIncr("pend_ios", -1)
				r.CaptureFeature("io_latency", u64(int64(i)))
			}
		}()
	}
	wg.Wait()
	v := r.CommitCapture(1)
	if got := int64(binary.LittleEndian.Uint64(v.Values["pend_ios"])); got != 0 {
		t.Fatalf("pend_ios = %d, want 0 after balanced incr/decr", got)
	}
}

func TestModelLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	path := filepath.Join(dir, "linnos.model")
	m, err := s.CreateModel("sda1", "bio", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateModel("sda1", "bio", path); err == nil {
		t.Fatal("duplicate model accepted")
	}
	blob := []byte{1, 2, 3, 4}
	if err := s.UpdateModel("sda1", "bio", blob); err != nil {
		t.Fatal(err)
	}
	// Fresh store loads the committed blob from disk.
	s2 := NewStore()
	m2, err := s2.LoadModel("sda1", "bio", path)
	if err != nil {
		t.Fatal(err)
	}
	if string(m2.Blob) != string(blob) {
		t.Fatalf("loaded blob = %v, want %v", m2.Blob, blob)
	}
	if err := s2.DeleteModel("sda1", "bio"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadModel("sda1", "bio", path); err == nil {
		t.Fatal("load after delete succeeded")
	}
	if err := s.UpdateModel("ghost", "bio", nil); err == nil {
		t.Fatal("update of missing model succeeded")
	}
	if err := s.DeleteModel("ghost", "bio"); err == nil {
		t.Fatal("delete of missing model succeeded")
	}
	if m.Path != path {
		t.Fatalf("model path = %q, want %q", m.Path, path)
	}
}

func TestArchString(t *testing.T) {
	if ArchCPU.String() != "CPU" || ArchGPU.String() != "GPU" || ArchXPU.String() != "XPU" {
		t.Fatal("Arch strings wrong")
	}
	if Arch(9).String() == "" {
		t.Fatal("unknown arch stringifies empty")
	}
}

// Property: after any commit sequence, every io_latency history array holds
// the per-vector samples in reverse commit order.
func TestQuickHistoryMatchesCommits(t *testing.T) {
	f := func(lats []uint16) bool {
		if len(lats) == 0 {
			return true
		}
		s := NewStore()
		r, err := s.CreateRegistry("d", "s", Schema{{Key: "lat", Size: 8, Entries: 3}}, 64)
		if err != nil {
			return false
		}
		for i, l := range lats {
			if i >= 60 {
				break
			}
			r.BeginCapture(time.Duration(i))
			r.CaptureFeature("lat", u64(int64(l)))
			r.CommitCapture(time.Duration(i))
		}
		vs := r.GetFeatures(NullTS)
		last := vs[len(vs)-1]
		n := len(lats)
		if n > 60 {
			n = 60
		}
		for j := 0; j < 3 && j < n; j++ {
			got := int64(binary.LittleEndian.Uint64(last.Values["lat"][8*j:]))
			if got != int64(lats[n-1-j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGetFeatureAtPointQuery(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	// Vectors covering [0,10], [10,25], [25,30].
	for _, iv := range [][2]time.Duration{{0, 10}, {10, 25}, {25, 30}} {
		r.BeginCapture(iv[0])
		r.CommitCapture(iv[1])
	}
	v, ok := r.GetFeatureAt(12)
	if !ok || v.TsBegin != 10 || v.TsEnd != 25 {
		t.Fatalf("GetFeatureAt(12) = [%v,%v] ok=%v, want [10,25]", v.TsBegin, v.TsEnd, ok)
	}
	// Boundary timestamps hit the first covering vector.
	if v, ok := r.GetFeatureAt(10); !ok || v.TsBegin != 0 {
		t.Fatalf("GetFeatureAt(10) = [%v,%v] ok=%v, want the first interval", v.TsBegin, v.TsEnd, ok)
	}
	if _, ok := r.GetFeatureAt(99); ok {
		t.Fatal("uncovered timestamp resolved")
	}
}

func TestRegistryStats(t *testing.T) {
	_, r := newStoreAndRegistry(t)
	r.RegisterClassifier(ArchCPU, func(batch []Vector) ([]float32, error) {
		return make([]float32, len(batch)), nil
	})
	r.BeginCapture(0)
	r.CaptureFeature("io_latency", u64(1))
	r.CaptureFeatureIncr("pend_ios", 1)
	r.CaptureFeatureIncr("pend_ios", -1)
	r.CommitCapture(1)
	if _, _, err := r.ScoreFeatures(r.GetFeatures(NullTS)); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Captures != 1 || st.Incrs != 2 || st.Commits != 1 || st.Scored != 1 || st.Buffered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
