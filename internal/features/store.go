package features

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// Store is the process-wide collection of feature registries and ML models,
// keyed by (name, sys) exactly as every Table 1 API call is. A LAKE runtime
// owns one Store.
type Store struct {
	mu         sync.Mutex
	registries map[string]*Registry
	models     map[string]*Model
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		registries: make(map[string]*Registry),
		models:     make(map[string]*Model),
	}
}

func key(name, sys string) string { return name + "\x00" + sys }

// CreateRegistry creates a feature registry with capacity window
// (create_registry).
func (s *Store) CreateRegistry(name, sys string, schema Schema, window int) (*Registry, error) {
	if name == "" || sys == "" {
		return nil, errors.New("features: registry name and sys are required")
	}
	r, err := newRegistry(name, sys, schema, window)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.registries[key(name, sys)]; exists {
		return nil, fmt.Errorf("features: registry %s/%s already exists", name, sys)
	}
	s.registries[key(name, sys)] = r
	return r, nil
}

// Registry looks up an existing registry.
func (s *Store) Registry(name, sys string) (*Registry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.registries[key(name, sys)]
	return r, ok
}

// DestroyRegistry destroys a feature registry (destroy_registry).
func (s *Store) DestroyRegistry(name, sys string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.registries[key(name, sys)]; !ok {
		return fmt.Errorf("features: registry %s/%s does not exist", name, sys)
	}
	delete(s.registries, key(name, sys))
	return nil
}

// Registries returns the number of live registries.
func (s *Store) Registries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.registries)
}

// Model is one managed ML model: an opaque parameter blob plus its
// file-system home. Models are "committed to the file system and loaded
// into memory at boot time. Loading and update are infrequent, so file
// system overheads are acceptable, but at inference time, having the model
// in memory is critical" (§5.1) — hence Blob stays resident.
type Model struct {
	Name string
	Sys  string
	Path string
	Blob []byte
}

// CreateModel creates a new (empty) model saved at path (create_model).
func (s *Store) CreateModel(name, sys, path string) (*Model, error) {
	if name == "" || sys == "" || path == "" {
		return nil, errors.New("features: model name, sys and path are required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.models[key(name, sys)]; exists {
		return nil, fmt.Errorf("features: model %s/%s already exists", name, sys)
	}
	m := &Model{Name: name, Sys: sys, Path: path}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		return nil, fmt.Errorf("features: create model file: %w", err)
	}
	s.models[key(name, sys)] = m
	return m, nil
}

// Model looks up an in-memory model.
func (s *Store) Model(name, sys string) (*Model, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[key(name, sys)]
	return m, ok
}

// UpdateModel commits the model's current in-memory blob to the file system
// (update_model). Pass blob to replace the parameters atomically.
func (s *Store) UpdateModel(name, sys string, blob []byte) error {
	s.mu.Lock()
	m, ok := s.models[key(name, sys)]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("features: model %s/%s does not exist", name, sys)
	}
	if blob != nil {
		cp := make([]byte, len(blob))
		copy(cp, blob)
		m.Blob = cp
	}
	tmp := m.Path + ".tmp"
	if err := os.WriteFile(tmp, m.Blob, 0o644); err != nil {
		return fmt.Errorf("features: write model: %w", err)
	}
	if err := os.Rename(tmp, m.Path); err != nil {
		return fmt.Errorf("features: commit model: %w", err)
	}
	return nil
}

// LoadModel loads a model's parameters from path into memory (load_model),
// registering it under (name, sys) if new.
func (s *Store) LoadModel(name, sys, path string) (*Model, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("features: load model: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[key(name, sys)]
	if !ok {
		m = &Model{Name: name, Sys: sys, Path: path}
		s.models[key(name, sys)] = m
	}
	m.Path = path
	m.Blob = blob
	return m, nil
}

// DeleteModel deletes a model from the file system and memory
// (delete_model).
func (s *Store) DeleteModel(name, sys string) error {
	s.mu.Lock()
	m, ok := s.models[key(name, sys)]
	if ok {
		delete(s.models, key(name, sys))
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("features: model %s/%s does not exist", name, sys)
	}
	if err := os.Remove(m.Path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("features: delete model file: %w", err)
	}
	return nil
}
