// Package features implements LAKE's in-kernel feature registry (§5): named
// combinations of an ML model, a feature-vector schema and a capture window,
// with the full Table 1 API — asynchronous lock-free feature capture across
// module boundaries, history-array schema support, batch retrieval with
// truncation semantics, model lifecycle management, and classifier/policy
// registration for invoking inference.
package features

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/lockfree"
	"lakego/internal/policy"
	"lakego/internal/ringbuf"
)

// NullTS is the "null timestamp" Table 1's batch APIs accept: querying with
// it returns every feature vector in the window, truncating with it clears
// the ring (§5.4).
const NullTS = time.Duration(-1)

// Arch tags a registered classifier with the hardware it targets
// (register_classifier's arch parameter: "CPU / GPU / XPU").
type Arch int

// Classifier architectures.
const (
	ArchCPU Arch = iota
	ArchGPU
	ArchXPU
)

var archNames = [...]string{"CPU", "GPU", "XPU"}

func (a Arch) String() string {
	if a >= 0 && int(a) < len(archNames) {
		return archNames[a]
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// Field describes one feature in a schema: a key mapping to
// <size, entries>, where size is bytes per value and entries > 1 requests
// the API-level history idiom of §5.2 (index 0 = most recent sample,
// 1..N-1 = samples from the previous N-1 committed vectors).
type Field struct {
	Key     string
	Size    int
	Entries int
}

// Schema is the ordered field list describing a registry's feature vectors.
type Schema []Field

// Validate checks the schema for well-formedness.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return errors.New("features: schema has no fields")
	}
	seen := make(map[string]bool, len(s))
	for _, f := range s {
		if f.Key == "" {
			return errors.New("features: schema field with empty key")
		}
		if seen[f.Key] {
			return fmt.Errorf("features: duplicate schema key %q", f.Key)
		}
		seen[f.Key] = true
		if f.Size <= 0 {
			return fmt.Errorf("features: field %q size %d must be positive", f.Key, f.Size)
		}
		if f.Entries <= 0 {
			return fmt.Errorf("features: field %q entries %d must be positive", f.Key, f.Entries)
		}
	}
	return nil
}

// hasHistory reports whether any field keeps historical entries, which
// changes truncation semantics (§5.4: "LAKE will always preserve the most
// recent feature vector on truncation").
func (s Schema) hasHistory() bool {
	for _, f := range s {
		if f.Entries > 1 {
			return true
		}
	}
	return false
}

// Vector is one committed feature vector: the paper's
// <numfeatures, kvpair*, ts_begin, ts_end> record. Values holds, per key,
// Size*Entries bytes with the most recent sample at index 0.
type Vector struct {
	TsBegin time.Duration
	TsEnd   time.Duration
	Values  map[string][]byte
}

// Classifier runs inference over a batch of feature vectors and returns one
// score per vector (register_classifier's fn).
type Classifier func(batch []Vector) ([]float32, error)

// Registry is one named feature registry bound to a kernel subsystem.
//
// Capture calls (CaptureFeature, CaptureFeatureIncr) are lock-free and safe
// from any goroutine — the paper's requirement for instrumenting code sites
// with different locking disciplines. Ring-level operations (Commit,
// GetFeatures, Truncate) serialize on an internal mutex.
type Registry struct {
	name   string
	sys    string
	schema Schema

	current *lockfree.Map // in-flight capture, persists across commits

	// Lock-free instrumentation counters (updated on the capture path).
	captures atomic.Int64
	incrs    atomic.Int64
	scored   atomic.Int64

	mu          sync.Mutex
	ring        *ringbuf.Ring[Vector]
	tsBegin     time.Duration
	classifiers map[Arch]Classifier
	pol         policy.Func
	commits     int64
}

// RegistryStats is a snapshot of a registry's activity counters.
type RegistryStats struct {
	// Captures and Incrs count capture_feature / capture_feature_incr
	// calls; Commits counts committed vectors; Scored counts vectors that
	// went through inference; Buffered is the current window occupancy.
	Captures, Incrs, Commits, Scored int64
	Buffered                         int
}

func newRegistry(name, sys string, schema Schema, window int) (*Registry, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if window <= 0 {
		return nil, fmt.Errorf("features: window %d must be positive", window)
	}
	return &Registry{
		name:        name,
		sys:         sys,
		schema:      schema,
		current:     lockfree.NewMap(len(schema)),
		ring:        ringbuf.New[Vector](window),
		classifiers: make(map[Arch]Classifier),
	}, nil
}

// Name returns the registry's name (e.g. a device name like "sda1").
func (r *Registry) Name() string { return r.name }

// Sys returns the owning subsystem (e.g. "bio_latency_prediction").
func (r *Registry) Sys() string { return r.sys }

// Schema returns the registry's schema.
func (r *Registry) Schema() Schema { return r.schema }

// Window returns the capture window (ring capacity).
func (r *Registry) Window() int { return r.ring.Cap() }

// Len returns the number of committed vectors currently buffered.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Len()
}

// Commits returns the total number of vectors ever committed.
func (r *Registry) Commits() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.commits
}

func (r *Registry) field(key string) (Field, error) {
	for _, f := range r.schema {
		if f.Key == key {
			return f, nil
		}
	}
	return Field{}, fmt.Errorf("features: key %q not in schema of %s/%s", key, r.name, r.sys)
}

// Stats snapshots the registry's activity counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	commits := r.commits
	buffered := r.ring.Len()
	r.mu.Unlock()
	return RegistryStats{
		Captures: r.captures.Load(),
		Incrs:    r.incrs.Load(),
		Commits:  commits,
		Scored:   r.scored.Load(),
		Buffered: buffered,
	}
}

// BeginCapture starts the creation of a new feature vector
// (begin_fv_capture). Captured values persist across commits — running
// counters like pend_ios carry forward, per the Listing 4/5 idiom.
func (r *Registry) BeginCapture(ts time.Duration) {
	r.mu.Lock()
	r.tsBegin = ts
	r.mu.Unlock()
}

// CaptureFeature sets the feature at key on the current vector
// (capture_feature). Callable lock-free from any goroutine.
func (r *Registry) CaptureFeature(key string, val []byte) error {
	f, err := r.field(key)
	if err != nil {
		return err
	}
	if len(val) > f.Size {
		return fmt.Errorf("features: value for %q is %d bytes, schema size %d",
			key, len(val), f.Size)
	}
	if !r.current.Store(key, val) {
		return fmt.Errorf("features: capture table full for %s/%s", r.name, r.sys)
	}
	r.captures.Add(1)
	return nil
}

// CaptureFeatureIncr updates the feature at key by incrementing it
// (capture_feature_incr); values are treated as little-endian int64
// counters. Callable lock-free from any goroutine.
func (r *Registry) CaptureFeatureIncr(key string, delta int64) (int64, error) {
	f, err := r.field(key)
	if err != nil {
		return 0, err
	}
	if f.Size < 8 {
		return 0, fmt.Errorf("features: key %q has size %d, increments need 8", key, f.Size)
	}
	v, ok := r.current.Add(key, delta)
	if !ok {
		return 0, fmt.Errorf("features: capture table full for %s/%s", r.name, r.sys)
	}
	r.incrs.Add(1)
	return v, nil
}

// CommitCapture commits the current feature values as a vector with end
// timestamp ts (commit_fv_capture). Fields with entries > 1 are populated
// by shifting the previous vector's history down one slot.
func (r *Registry) CommitCapture(ts time.Duration) Vector {
	r.mu.Lock()
	defer r.mu.Unlock()

	prev, havePrev := r.ring.Newest()
	v := Vector{TsBegin: r.tsBegin, TsEnd: ts, Values: make(map[string][]byte, len(r.schema))}
	for _, f := range r.schema {
		buf := make([]byte, f.Size*f.Entries)
		if cur, ok := r.current.Load(f.Key); ok {
			copy(buf[:f.Size], cur)
		}
		if f.Entries > 1 && havePrev {
			if ph, ok := prev.Values[f.Key]; ok {
				copy(buf[f.Size:], ph[:f.Size*(f.Entries-1)])
			}
		}
		v.Values[f.Key] = buf
	}
	r.ring.Push(v)
	r.commits++
	return v
}

// GetFeatures batch-retrieves committed vectors (get_features): with
// NullTS, every vector in the window; otherwise all vectors with
// ts_end <= ts ("older than ts"). Vectors are returned oldest first.
func (r *Registry) GetFeatures(ts time.Duration) []Vector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ts == NullTS {
		return r.ring.Snapshot()
	}
	var out []Vector
	for i := 0; i < r.ring.Len(); i++ {
		v := r.ring.At(i)
		if v.TsEnd <= ts {
			out = append(out, v)
		}
	}
	return out
}

// GetFeatureAt returns the first committed vector whose capture interval
// covers ts — §5.4's point query ("Querying the registry with a timestamp
// ts returns the first feature vector for which ts_begin <= ts <= ts_end").
func (r *Registry) GetFeatureAt(ts time.Duration) (Vector, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.ring.Len(); i++ {
		v := r.ring.At(i)
		if v.TsBegin <= ts && ts <= v.TsEnd {
			return v, true
		}
	}
	return Vector{}, false
}

// Truncate removes committed vectors older than ts (truncate_features);
// NullTS removes everything. When the schema keeps history entries, the
// most recent vector is always preserved so future commits can populate
// their history arrays (§5.4).
func (r *Registry) Truncate(ts time.Duration) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	keepLast := r.schema.hasHistory()
	dropped := 0
	for r.ring.Len() > 0 {
		if keepLast && r.ring.Len() == 1 {
			break
		}
		oldest := r.ring.At(0)
		if ts != NullTS && oldest.TsEnd > ts {
			break
		}
		r.ring.PopOldest()
		dropped++
	}
	return dropped
}

// RegisterClassifier provides the inference function for one architecture
// (register_classifier).
func (r *Registry) RegisterClassifier(arch Arch, fn Classifier) error {
	if fn == nil {
		return errors.New("features: nil classifier")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classifiers[arch] = fn
	return nil
}

// RegisterPolicy installs the contention/batching policy consulted by
// ScoreFeatures (register_policy).
func (r *Registry) RegisterPolicy(fn policy.Func) error {
	if fn == nil {
		return errors.New("features: nil policy")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pol = fn
	return nil
}

// ScoreFeatures runs inference on a batch (score_features). The registered
// policy picks the architecture (defaulting to CPU with no policy); if no
// classifier is registered for the chosen architecture, the CPU classifier
// is the fallback — the kernel always has a CPU path (§3).
func (r *Registry) ScoreFeatures(batch []Vector) ([]float32, Arch, error) {
	if len(batch) == 0 {
		return nil, ArchCPU, nil
	}
	r.mu.Lock()
	pol := r.pol
	cls := make(map[Arch]Classifier, len(r.classifiers))
	for a, c := range r.classifiers {
		cls[a] = c
	}
	r.mu.Unlock()

	arch := ArchCPU
	if pol != nil && pol(len(batch)) == policy.UseGPU {
		arch = ArchGPU
	}
	fn, ok := cls[arch]
	if !ok {
		arch = ArchCPU
		if fn, ok = cls[ArchCPU]; !ok {
			return nil, arch, fmt.Errorf("features: no classifier registered for %s/%s", r.name, r.sys)
		}
	}
	scores, err := fn(batch)
	if err != nil {
		return nil, arch, err
	}
	r.scored.Add(int64(len(batch)))
	if len(scores) != len(batch) {
		return nil, arch, fmt.Errorf("features: classifier returned %d scores for %d vectors",
			len(scores), len(batch))
	}
	return scores, arch, nil
}
