// Chaos harness: the full LAKE stack — lakeLib stubs, wire protocol,
// lakeD, and the three §7 workloads — driven under injected channel and
// daemon faults. Every swept mix must preserve exactly-once call semantics
// (no lost results, no re-executed commands) with bit-correct predictions
// and bounded tail latency; a crash-free run with the whole fault/recovery
// machinery armed must be bit-identical to the plain runtime.
package lake_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	lake "lakego"
	"lakego/internal/kml"
	"lakego/internal/linnos"
	"lakego/internal/mllb"
	"lakego/internal/nn"
)

// dumpOnFailure arms the kernel-style post-mortem: if the test fails and
// LAKE_CHAOS_DUMP_DIR is set (the CI chaos job sets it and uploads the
// directory as a workflow artifact), the runtime's flight recorder is
// snapshotted to <dir>/<TestName>.bin for offline analysis with
// `go run ./cmd/laketrace <file>`.
func dumpOnFailure(t *testing.T, rt *lake.Runtime) {
	t.Cleanup(func() {
		dir := os.Getenv("LAKE_CHAOS_DUMP_DIR")
		if dir == "" || !t.Failed() {
			return
		}
		rec := rt.FlightRecorder()
		if rec == nil {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("flight-recorder dump: %v", err)
			return
		}
		path := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+".bin")
		if err := os.WriteFile(path, rec.Snapshot("test-failure").Encode(), 0o644); err != nil {
			t.Logf("flight-recorder dump: %v", err)
			return
		}
		t.Logf("flight-recorder dump written to %s (analyze with: go run ./cmd/laketrace %s)", path, path)
	})
}

// chaosStack is one booted runtime carrying the three evaluation workloads.
type chaosStack struct {
	rt  *lake.Runtime
	lin *linnos.Predictor
	km  *kml.Classifier
	ml  *mllb.Balancer
}

func newChaosStack(t *testing.T, mix *lake.FaultMix) *chaosStack {
	return newChaosStackOn(t, mix, lake.Netlink)
}

// newChaosStackOn boots the chaos stack on an explicit command channel; the
// ring bit-identity sweep runs the same workloads over both transports.
func newChaosStackOn(t *testing.T, mix *lake.FaultMix, ch lake.ChannelKind) *chaosStack {
	t.Helper()
	cfg := lake.DefaultConfig()
	cfg.Faults = mix
	cfg.Channel = ch
	rt, err := lake.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	dumpOnFailure(t, rt)
	lin, err := linnos.NewPredictor(rt, linnos.Base, nn.New(11, linnos.Base.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	km, err := kml.New(rt, nn.New(12, kml.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	ml, err := mllb.New(rt, nn.New(13, mllb.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	return &chaosStack{rt: rt, lin: lin, km: km, ml: ml}
}

// chaosBatchOf builds a deterministic input batch: round and width fix the
// contents, so every run (clean or faulty) sees identical workloads.
func chaosBatchOf(width, round, n int) [][]float32 {
	batch := make([][]float32, n)
	for i := range batch {
		x := make([]float32, width)
		for j := range x {
			x[j] = float32((round*31+i*7+j*3)%17) / 17
		}
		batch[i] = x
	}
	return batch
}

func chaosRounds() int {
	if testing.Short() {
		return 12
	}
	return 40
}

// runChaosWorkloads drives the three workloads through their policy-routed
// paths, verifying every prediction against a direct forward pass of the
// same network (the ground truth no fault may alter). It returns a digest
// of all predictions and the per-call virtual-time latencies.
func runChaosWorkloads(t *testing.T, s *chaosStack, rounds, batch int) (digest []int, lats []time.Duration) {
	t.Helper()
	clock := s.rt.Clock()
	timeCall := func(f func()) {
		start := clock.Now()
		f()
		lats = append(lats, clock.Now()-start)
	}
	for round := 0; round < rounds; round++ {
		linBatch := chaosBatchOf(linnos.InputWidth, round, batch)
		timeCall(func() {
			slow, _, _, err := s.lin.InferAuto(linBatch, nil)
			if err != nil {
				t.Fatalf("round %d linnos: %v", round, err)
			}
			for i, x := range linBatch {
				logits := s.lin.Net().Forward(x)
				if want := logits[1] > logits[0]; slow[i] != want {
					t.Fatalf("round %d linnos item %d: got %v, reference %v", round, i, slow[i], want)
				}
				digest = append(digest, boolBit(slow[i]))
			}
		})

		kmBatch := chaosBatchOf(kml.InputWidth, round, batch)
		timeCall(func() {
			pats, _, _, err := s.km.ClassifyAuto(kmBatch, nil)
			if err != nil {
				t.Fatalf("round %d kml: %v", round, err)
			}
			for i, x := range kmBatch {
				out := s.km.Net().Forward(x)
				want, best := 0, out[0]
				for c := 1; c < len(out); c++ {
					if out[c] > best {
						want, best = c, out[c]
					}
				}
				if int(pats[i]) != want {
					t.Fatalf("round %d kml item %d: got %d, reference %d", round, i, pats[i], want)
				}
				digest = append(digest, int(pats[i]))
			}
		})

		mlBatch := chaosBatchOf(mllb.InputWidth, round, batch)
		timeCall(func() {
			migrate, _, _, err := s.ml.ClassifyAuto(mlBatch, nil)
			if err != nil {
				t.Fatalf("round %d mllb: %v", round, err)
			}
			for i, x := range mlBatch {
				y := s.ml.Net().Forward(x)
				if want := y[1] > y[0]; migrate[i] != want {
					t.Fatalf("round %d mllb item %d: got %v, reference %v", round, i, migrate[i], want)
				}
				digest = append(digest, boolBit(migrate[i]))
			}
		})
	}
	return digest, lats
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(float64(len(s)-1)*p)]
}

// TestChaosSweep is the harness entry point: every fault mix up to 5%
// drops, doubled channel delay, and random daemon crashes must leave all
// workload calls completed exactly-once with reference-matching results
// and bounded p99 latency.
func TestChaosSweep(t *testing.T) {
	rounds, batch := chaosRounds(), 16

	// Reference run: clean stack, same workload script. Its daemon-executed
	// count is the exactly-once yardstick — a faulty run that loses a
	// command executes fewer, one that re-executes a redelivery executes
	// more.
	clean := newChaosStack(t, nil)
	cleanDigest, _ := runChaosWorkloads(t, clean, rounds, batch)
	cleanExec := clean.rt.Daemon().Executed()

	mixes := []struct {
		name string
		mix  lake.FaultMix
		long bool // skipped in -short
	}{
		{"drop1", lake.FaultMix{Drop: 0.01, Seed: 101}, true},
		{"drop5", lake.FaultMix{Drop: 0.05, Seed: 102}, false},
		{"dup2", lake.FaultMix{Duplicate: 0.02, Seed: 103}, true},
		{"corrupt1", lake.FaultMix{Corrupt: 0.01, Seed: 104}, true},
		{"delay2x", lake.FaultMix{Delay: 0.5, DelayMin: 30 * time.Microsecond, DelayMax: 60 * time.Microsecond, Seed: 105}, false},
		{"crash", lake.FaultMix{Crash: 0.01, Seed: 106}, false},
		{"mixed", lake.FaultMix{
			Drop: 0.05, Corrupt: 0.01, Duplicate: 0.02,
			Delay: 0.1, DelayMin: 20 * time.Microsecond, DelayMax: 60 * time.Microsecond,
			Crash: 0.005, Seed: 107,
		}, false},
	}
	for _, tc := range mixes {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.long && testing.Short() {
				t.Skip("reduced sweep in -short")
			}
			s := newChaosStack(t, &tc.mix)
			digest, lats := runChaosWorkloads(t, s, rounds, batch)

			if len(digest) != len(cleanDigest) {
				t.Fatalf("digest length %d != clean %d", len(digest), len(cleanDigest))
			}
			for i := range digest {
				if digest[i] != cleanDigest[i] {
					t.Fatalf("prediction %d diverged from clean run: %d vs %d", i, digest[i], cleanDigest[i])
				}
			}

			// Exactly-once: every distinct command executed exactly once —
			// none lost, no redelivery re-executed.
			if got := s.rt.Daemon().Executed(); got != cleanExec {
				t.Fatalf("daemon executed %d distinct commands, clean run executed %d", got, cleanExec)
			}
			rs := s.rt.Lib().ResilienceStats()
			if rs.DaemonDead != 0 || rs.DeadlineExceeded != 0 {
				t.Fatalf("abandoned calls under %s: %+v", tc.name, rs)
			}

			// The mix must actually have fired, or the sweep proves nothing.
			fs := s.rt.FaultPlane().Stats()
			injected := fs.Dropped + fs.Corrupted + fs.Duplicated + fs.Delayed + fs.Crashes()
			if injected == 0 {
				t.Fatalf("mix %s injected no faults over %d messages", tc.name, fs.Messages)
			}
			if tc.mix.Crash > 0 {
				if fs.Crashes() == 0 {
					t.Fatalf("crash mix produced no crashes over %d messages", fs.Messages)
				}
				if s.rt.Daemon().Restarts() == 0 {
					t.Fatal("daemon crashed but was never restarted")
				}
			}

			// Tail latency stays bounded: retries, redeliveries and restarts
			// cost microseconds-to-milliseconds, never unbounded stalls.
			p99 := percentile(lats, 0.99)
			if p99 > 10*time.Millisecond {
				t.Fatalf("p99 call latency %v exceeds 10ms under %s", p99, tc.name)
			}
			t.Logf("%s: %d faults over %d messages, %d retries, %d redeliveries, %d restarts, p99=%v",
				tc.name, injected, fs.Messages, rs.Retries,
				s.rt.Daemon().Redelivered(), s.rt.Daemon().Restarts(), p99)
		})
	}
}

// TestChaosCrashFreeBitIdentical pins the zero-overhead guarantee: a run
// with the fault plane attached (all rates zero) and resilience + the
// supervisor armed is bit-identical — same predictions, same virtual
// clock, same wire traffic — to the plain runtime.
func TestChaosCrashFreeBitIdentical(t *testing.T) {
	rounds, batch := chaosRounds(), 8

	plain := newChaosStack(t, nil)
	plainDigest, plainLats := runChaosWorkloads(t, plain, rounds, batch)
	plainStats := plain.rt.Stats()

	armed := newChaosStack(t, &lake.FaultMix{Seed: 99}) // zero rates: nothing fires
	armedDigest, armedLats := runChaosWorkloads(t, armed, rounds, batch)
	armedStats := armed.rt.Stats()

	if len(plainDigest) != len(armedDigest) {
		t.Fatalf("digest lengths differ: %d vs %d", len(plainDigest), len(armedDigest))
	}
	for i := range plainDigest {
		if plainDigest[i] != armedDigest[i] {
			t.Fatalf("prediction %d differs: plain %d, armed %d", i, plainDigest[i], armedDigest[i])
		}
	}
	for i := range plainLats {
		if plainLats[i] != armedLats[i] {
			t.Fatalf("call %d latency differs: plain %v, armed %v", i, plainLats[i], armedLats[i])
		}
	}
	if plainStats.VirtualTime != armedStats.VirtualTime {
		t.Fatalf("virtual clocks diverged: plain %v, armed %v", plainStats.VirtualTime, armedStats.VirtualTime)
	}
	if plainStats.RemotedCalls != armedStats.RemotedCalls ||
		plainStats.ChannelTime != armedStats.ChannelTime ||
		plainStats.DaemonHandled != armedStats.DaemonHandled ||
		plainStats.KernelLaunches != armedStats.KernelLaunches {
		t.Fatalf("runtime stats diverged:\nplain %+v\narmed %+v", plainStats, armedStats)
	}
	if s := armed.rt.FaultPlane().Stats(); s != (lake.FaultStats{}) {
		t.Fatalf("zero-rate plane injected faults: %+v", s)
	}
	if rs := armed.rt.Lib().ResilienceStats(); rs != (lake.ResilienceStats{}) {
		t.Fatalf("crash-free armed run recorded resilience events: %+v", rs)
	}
}

// TestChaosCrashMidBatchRace is the dedicated -race crash test: concurrent
// batcher clients keep submitting while daemon crashes land mid-flight
// (both before and after command execution) and a supervisor heartbeat
// goroutine races the in-call recovery path. Every request must complete
// with reference-matching outputs — nothing lost, nothing duplicated.
func TestChaosCrashMidBatchRace(t *testing.T) {
	cfg := lake.DefaultConfig()
	cfg.Faults = &lake.FaultMix{Seed: 21} // plane attached; crashes injected manually
	cfg.Supervision = lake.SupervisorConfig{MaxRestarts: 1 << 20}
	rt, err := lake.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	dumpOnFailure(t, rt)

	net := nn.New(31, 8, 16, 2)
	b := rt.NewBatcher(lake.DefaultBatcherConfig())
	if err := b.RegisterModel(lake.BatcherModel{
		Name:       "chaosnet",
		InputWidth: 8, OutputWidth: 2,
		MaxBatch:     64,
		CPUFixed:     2 * time.Microsecond,
		CPUPerItem:   time.Microsecond,
		FlopsPerItem: 300,
		Forward:      net.Forward,
	}); err != nil {
		t.Fatal(err)
	}

	// Arm one crash before any submitter runs so at least one restart
	// happens regardless of goroutine scheduling.
	rt.Daemon().InjectCrash(true)

	const workers, per = 4, 40
	var submitters sync.WaitGroup
	errs := make(chan string, workers*per)
	for w := 0; w < workers; w++ {
		submitters.Add(1)
		go func(w int) {
			defer submitters.Done()
			client := b.Client("chaos-client")
			for i := 0; i < per; i++ {
				item := make([]float32, 8)
				for j := range item {
					item[j] = float32((w*per+i+j)%13) / 13
				}
				out, err := client.Infer("chaosnet", [][]float32{item})
				if err != nil {
					errs <- "infer: " + err.Error()
					return
				}
				want := net.Forward(item)
				if len(out) != 1 || len(out[0]) != len(want) {
					errs <- "wrong output shape"
					return
				}
				for j := range want {
					if out[0][j] != want[j] {
						errs <- "output diverged from reference forward pass"
						return
					}
				}
			}
		}(w)
	}

	// Chaos driver: keep crashing the daemon — alternating before-exec and
	// after-exec placements — while racing the supervisor heartbeat against
	// the submitters' in-call recovery.
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		daemon, sup := rt.Daemon(), rt.Supervisor()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			daemon.InjectCrash(i%2 == 0)
			sup.Check()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	submitters.Wait()
	close(stop)
	driver.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	st := b.Stats()
	if got := int(st.Requests); got != workers*per {
		t.Fatalf("batcher accepted %d requests, want %d", got, workers*per)
	}
	if rt.Daemon().Restarts() == 0 {
		t.Fatal("no daemon restarts despite injected crashes")
	}
	// The stack must still be usable after the storm (a pending injected
	// crash may claim one more command; recovery absorbs it).
	if _, r := rt.Lib().CuDeviceGetCount(); r != lake.Success {
		t.Fatalf("post-chaos stack unusable: %s", r)
	}
	t.Logf("restarts=%d redelivered=%d fallbackFlushes=%d requests=%d",
		rt.Daemon().Restarts(), rt.Daemon().Redelivered(), st.FallbackFlushes, st.Requests)
}
