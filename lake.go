// Package lake is the public API of LAKE, a framework for exposing
// ML-focused hardware acceleration in kernel space, reproduced in Go from
// "Towards a Machine Learning-Assisted Kernel with LAKE" (ASPLOS 2023).
//
// A Runtime wires together the three components of Fig 2 — lakeLib (the
// kernel-side API provider), lakeShm (the zero-copy bulk-data channel) and
// lakeD (the user-space daemon realizing accelerator APIs) — plus the
// Fig 3 execution-policy framework and the §5 in-kernel feature registry.
// Because Go cannot run in kernel space, the kernel/user boundary and the
// accelerator are high-fidelity simulations on a virtual clock; every
// protocol layer above them (command serialization, shared-memory handoff,
// policy decisions, feature capture) is the real code path.
//
// Quick start:
//
//	rt, err := lake.New(lake.DefaultConfig())
//	if err != nil { ... }
//	defer rt.Close()
//	rt.RegisterKernel(lake.VecAddKernel())
//	lib := rt.Lib()                  // lakeLib: remoted CUDA driver API
//	ctx, _ := lib.CuCtxCreate("app")
//	buf, _ := rt.Region().Alloc(n)   // lakeShm: zero-copy staging
//	...
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package lake

import (
	"lakego/internal/batcher"
	"lakego/internal/boundary"
	"lakego/internal/core"
	"lakego/internal/cuda"
	"lakego/internal/faults"
	"lakego/internal/features"
	"lakego/internal/fleet"
	"lakego/internal/flightrec"
	"lakego/internal/gpu"
	"lakego/internal/gpupool"
	"lakego/internal/healthplane"
	"lakego/internal/lifecycle"
	"lakego/internal/loadgen"
	"lakego/internal/policy"
	"lakego/internal/remoting"
	"lakego/internal/shm"
	"lakego/internal/telemetry"
)

// Runtime is one booted LAKE instance; see core.Runtime for method docs.
type Runtime = core.Runtime

// Config parameterizes New.
type Config = core.Config

// Stats is a snapshot of runtime activity counters.
type Stats = core.Stats

// New boots a LAKE runtime.
func New(cfg Config) (*Runtime, error) { return core.New(cfg) }

// DefaultConfig mirrors the paper's deployment: Netlink command channel,
// 128 MiB shared region, A100-class accelerator.
func DefaultConfig() Config { return core.DefaultConfig() }

// Re-exported component types reachable from a Runtime.
type (
	// Lib is lakeLib, the kernel-side accelerator API stubs.
	Lib = remoting.Lib
	// Daemon is lakeD, the user-space API-realizing daemon.
	Daemon = remoting.Daemon
	// HighLevelHandler realizes one custom high-level API in lakeD (§4.4).
	HighLevelHandler = remoting.HighLevelHandler
	// Region is the lakeShm shared-memory region.
	Region = shm.Region
	// Buffer is one zero-copy allocation within a Region.
	Buffer = shm.Buffer
	// Kernel is a device function launchable via the remoted driver API.
	Kernel = cuda.Kernel
	// Result is a CUDA-style status code returned by remoted APIs.
	Result = cuda.Result
	// DevPtr is an opaque device memory address.
	DevPtr = gpu.DevPtr
	// GPUSpec describes the modeled accelerator hardware.
	GPUSpec = gpu.Spec
	// ChannelKind selects the kernel<->user command channel.
	ChannelKind = boundary.Kind
)

// Feature registry types (§5, Table 1).
type (
	// FeatureStore holds the process's registries and models.
	FeatureStore = features.Store
	// FeatureRegistry is one named registry.
	FeatureRegistry = features.Registry
	// FeatureSchema describes a registry's vectors.
	FeatureSchema = features.Schema
	// FeatureField is one schema entry: key -> <size, entries>.
	FeatureField = features.Field
	// FeatureVector is one committed vector.
	FeatureVector = features.Vector
	// Classifier runs inference over a batch of vectors.
	Classifier = features.Classifier
)

// Cross-client batching subsystem types (internal/batcher): clients obtain
// a Batcher from Runtime.NewBatcher, register models, and submit through
// per-client handles; independent requests coalesce into batched GPU
// launches inside lakeD.
type (
	// Batcher aggregates concurrent inference requests per model.
	Batcher = batcher.Batcher
	// BatcherConfig parameterizes Runtime.NewBatcher.
	BatcherConfig = batcher.Config
	// BatcherModel describes one batchable model.
	BatcherModel = batcher.ModelConfig
	// BatcherClient is one submitter's fair-admission handle.
	BatcherClient = batcher.Client
	// BatcherPending is one in-flight batched request.
	BatcherPending = batcher.Pending
	// BatcherStats snapshots batching activity.
	BatcherStats = batcher.Stats
)

// ErrBackpressure is the batcher's reject-with-retry result.
var ErrBackpressure = batcher.ErrBackpressure

// Multi-GPU device pool types (internal/gpupool): set Config.NumDevices (or
// Config.DeviceSpecs for a heterogeneous pool) and Config.PoolPolicy to boot
// a runtime over several modeled accelerators; placement draws only from the
// pool's seeded PRNG and the virtual clock, so fixed-seed multi-device runs
// are bit-identical.
type (
	// GPUPool is the runtime's device pool, reachable via Runtime.Pool().
	GPUPool = gpupool.Pool
	// PoolPolicy selects the placement policy for new contexts.
	PoolPolicy = gpupool.Policy
	// PoolConfig parameterizes a standalone gpupool.New.
	PoolConfig = gpupool.Config
	// DeviceAccounting is one device's per-ordinal copy/launch counters.
	DeviceAccounting = gpupool.DeviceAccounting
)

// Placement policies for PoolPolicy.
const (
	// PoolRoundRobin cycles context placement across devices.
	PoolRoundRobin = gpupool.RoundRobin
	// PoolLeastOutstanding places on the device with the smallest backlog.
	PoolLeastOutstanding = gpupool.LeastOutstanding
	// PoolConsistentHash places each client on the member owning its name
	// on a seeded hash ring; the fleet router reuses it for tenant->shard
	// placement.
	PoolConsistentHash = gpupool.ConsistentHash
	// PoolContentionAware places on the least NVML-utilized device,
	// breaking ties by backlog then seeded PRNG (Fig 3 per device).
	PoolContentionAware = gpupool.ContentionAware
)

// ParsePoolPolicy parses a -pool-policy flag value ("round-robin",
// "least-outstanding", "contention-aware", or the short forms rr/lo/ca).
func ParsePoolPolicy(s string) (PoolPolicy, error) { return gpupool.ParsePolicy(s) }

// Observability plane types (internal/telemetry): every runtime carries a
// metrics + tracing registry (disable with Config.DisableTelemetry) exposed
// through Runtime.Telemetry(). Instruments are allocation-free on the hot
// path, and every method is a no-op on a nil receiver, so instrumented code
// never guards for a disabled plane.
type (
	// TelemetryRegistry is the per-runtime metric/tracing registry.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time JSON-friendly metrics dump.
	TelemetrySnapshot = telemetry.Snapshot
	// Counter is a monotonically increasing metric.
	Counter = telemetry.Counter
	// Gauge is a settable level metric.
	Gauge = telemetry.Gauge
	// Histogram is a fixed-bucket latency/size distribution.
	Histogram = telemetry.Histogram
	// Tracer records span-style per-call timelines when enabled.
	Tracer = telemetry.Tracer
	// Span is one traced call with its stage timeline.
	Span = telemetry.Span
)

// DefaultBatcherConfig returns the batching defaults (32-item target
// batches, 100µs max-wait flush deadline).
func DefaultBatcherConfig() BatcherConfig { return batcher.DefaultConfig() }

// Online model-lifecycle types (internal/lifecycle): a versioned registry
// of content-hashed immutable model snapshots whose serving slot is an
// atomic pointer flip, an in-daemon online trainer fed by a bounded
// feedback channel of observed outcomes, and a drift detector that
// demotes a degraded version (or falls back to the CPU/heuristic path).
// Boot one per model with Runtime.NewLifecycle.
type (
	// ModelManager runs one model's lifecycle.
	ModelManager = lifecycle.Manager
	// ModelLifecycleConfig parameterizes Runtime.NewLifecycle.
	ModelLifecycleConfig = lifecycle.Config
	// ModelRegistry is the versioned snapshot store with the serving slot.
	ModelRegistry = lifecycle.Registry
	// ModelVersion is one immutable registered snapshot.
	ModelVersion = lifecycle.Version
	// ModelMeta is a version's provenance.
	ModelMeta = lifecycle.Meta
	// ModelOutcome is one observed ground-truth feedback record.
	ModelOutcome = lifecycle.Outcome
	// ModelStats snapshots lifecycle activity.
	ModelStats = lifecycle.Stats
)

// DefaultLifecycleConfig returns the shipping lifecycle parameters for a
// model label.
func DefaultLifecycleConfig(model string) ModelLifecycleConfig {
	return lifecycle.DefaultConfig(model)
}

// Flight-recorder types (internal/flightrec): every telemetry-enabled
// runtime carries an always-on, lock-minimal flight recorder — per-domain
// rings of fixed-size binary events with explicit loss counters, reachable
// via Runtime.FlightRecorder(). Dumps trigger automatically on supervisor
// Dead/Restarting transitions and daemon crashes, on demand via
// Snapshot/TriggerDump, and over HTTP via laked's /flightrec.dump and
// /flightrec.json endpoints; cmd/laketrace stitches a dump back into
// per-call cross-domain timelines (see DESIGN.md).
type (
	// FlightRecorder is the per-runtime event recorder.
	FlightRecorder = flightrec.Recorder
	// FlightDump is one recorder snapshot, the crash artifact.
	FlightDump = flightrec.Dump
	// FlightEvent is one fixed-size recorded event.
	FlightEvent = flightrec.Event
	// FlightTimeline is one remoted call stitched across domains.
	FlightTimeline = flightrec.Timeline
	// FlightStitch is the reconstruction of a dump.
	FlightStitch = flightrec.StitchResult
)

// ReadFlightDump parses a flight-recorder dump from either its binary or
// JSON encoding.
func ReadFlightDump(data []byte) (*FlightDump, error) { return flightrec.ReadDump(data) }

// Live health plane types (internal/healthplane): a read-side surface that
// tails the flight recorder without disturbing the zero-allocation emit
// path, rolls tailed events plus telemetry-histogram deltas into
// multi-window per-stage latency percentiles and SRE-style error-budget
// burn rates, and captures anomaly-triggered black-box incident bundles
// (flight dump + telemetry snapshot + model registry state). Boot one with
// Runtime.NewHealthPlane or Fleet.NewHealthPlane and serve
// HealthPlane.Handler() on the routes in HealthPlanePaths — laked does.
type (
	// HealthPlane is the live health surface for a runtime or fleet.
	HealthPlane = healthplane.Plane
	// HealthPlaneConfig tunes tick granularity, burn-rate windows and
	// thresholds, objectives, and the incident-ring bound.
	HealthPlaneConfig = healthplane.Config
	// SLOObjective is one latency objective the burn engine tracks.
	SLOObjective = healthplane.Objective
	// SLOSnapshot is the /slo.json payload.
	SLOSnapshot = healthplane.SLOSnapshot
	// Incident is one anomaly-triggered black-box capture.
	Incident = healthplane.Incident
	// ShardHealth is one shard's liveness as /readyz reports it.
	ShardHealth = healthplane.ShardHealth
	// TailCursor is an opaque flight-recorder tail position; the zero
	// value starts from the oldest retained events.
	TailCursor = flightrec.TailCursor
)

// HealthPlanePaths lists the HTTP routes HealthPlane.Handler serves.
var HealthPlanePaths = healthplane.Paths

// DefaultSLOObjectives returns the default call/boundary objectives.
func DefaultSLOObjectives() []SLOObjective { return healthplane.DefaultObjectives() }

// ParseTailCursor parses a cursor string a previous tail returned.
func ParseTailCursor(s string) (TailCursor, error) { return flightrec.ParseTailCursor(s) }

// StitchFlightDump rebuilds per-call cross-domain timelines from a dump.
func StitchFlightDump(d *FlightDump) *FlightStitch { return flightrec.Stitch(d) }

// Fault-injection and recovery types (internal/faults, internal/core
// supervision, internal/remoting resilience). Set Config.Faults to attach
// a deterministic fault plane to a runtime's command channel and daemon;
// resilience (retry + backoff + recovery) arms automatically, with the
// runtime's Supervisor as the recovery hook.
type (
	// FaultMix is the seeded fault configuration (drop/corrupt/duplicate/
	// delay rates plus daemon-crash probability).
	FaultMix = faults.Mix
	// FaultPlane is an attached fault injector; query Stats for what it did.
	FaultPlane = faults.Plane
	// FaultStats counts injected faults.
	FaultStats = faults.Stats
	// Supervisor watches lakeD, restarts it on crash, and re-attaches state.
	Supervisor = core.Supervisor
	// SupervisorConfig parameterizes supervision thresholds.
	SupervisorConfig = core.SupervisorConfig
	// DaemonState is the supervisor's recovery state machine state.
	DaemonState = core.DaemonState
	// Resilience arms lakeLib's deadlines, retries and recovery hook.
	Resilience = remoting.Resilience
	// RetryPolicy is the exponential-backoff schedule with deterministic
	// jitter.
	RetryPolicy = remoting.RetryPolicy
	// ResilienceStats counts client-side fault handling events.
	ResilienceStats = remoting.ResilienceStats
)

// ErrNotReady (CUDA_ERROR_SYSTEM_NOT_READY) is what remoted stubs return
// when lakeD is declared dead: route to the CPU fallback.
const ErrNotReady = cuda.ErrNotReady

// DefaultResilience returns the default client robustness configuration.
func DefaultResilience() Resilience { return remoting.DefaultResilience() }

// HealthGated wraps a policy so offload is only considered while healthy()
// holds — e.g. policy.HealthGated(adaptive.Decide, rt.Lib().Healthy).
func HealthGated(inner PolicyFunc, healthy func() bool) PolicyFunc {
	return policy.HealthGated(inner, healthy)
}

// Policy types (§4.2, §4.3).
type (
	// PolicyFunc decides CPU vs accelerator for a batch.
	PolicyFunc = policy.Func
	// PolicyDecision is a policy outcome.
	PolicyDecision = policy.Decision
	// AdaptivePolicy is the Fig 3 contention/profitability policy.
	AdaptivePolicy = policy.Adaptive
	// AdaptiveConfig parameterizes an AdaptivePolicy.
	AdaptiveConfig = policy.AdaptiveConfig
	// PolicyProgram is verified eBPF-style policy bytecode.
	PolicyProgram = policy.Program
)

// Commonly used constants, re-exported for downstream callers.
const (
	// Success is the zero CUDA result.
	Success = cuda.Success
	// UseCPU and UseGPU are policy decisions.
	UseCPU = policy.UseCPU
	UseGPU = policy.UseGPU
	// ArchCPU and ArchGPU tag registered classifiers.
	ArchCPU = features.ArchCPU
	ArchGPU = features.ArchGPU
	// NullTS retrieves/truncates the whole feature window.
	NullTS = features.NullTS
	// Netlink is the default command channel (the paper's choice, §6).
	Netlink = boundary.Netlink
	// Ring is the shm-resident lock-free descriptor-ring channel: the
	// zero-allocation transport behind Config.Channel = Ring.
	Ring = boundary.Ring
)

// VecAddKernel returns the demonstration vector-add device kernel.
func VecAddKernel() *Kernel { return cuda.VecAddKernel() }

// Figure3Program compiles the paper's Fig 3 policy to bytecode for
// Runtime.InstallVMPolicy.
func Figure3Program(execThreshold, batchThreshold int64) PolicyProgram {
	return policy.Figure3Program(execThreshold, batchThreshold)
}

// DefaultAdaptiveConfig returns the evaluation's policy constants.
func DefaultAdaptiveConfig() AdaptiveConfig { return policy.DefaultAdaptiveConfig() }

// Sharded multi-daemon fleet (internal/fleet): N independent lakeD
// runtimes behind a client-side router with sticky tenant placement,
// layered admission, and drain/kill journal migration. Boot one with
// NewFleet; Config.NumShards, Config.RouterPolicy and Config.RouterSeed
// parameterize it (New ignores them — a single runtime is one shard).
type (
	// Fleet is a booted shard set plus its router.
	Fleet = fleet.Fleet
	// FleetConfig parameterizes NewFleet.
	FleetConfig = fleet.Config
	// FleetShard is one lakeD runtime under fleet management.
	FleetShard = fleet.Shard
	// FleetShardState is the router's view of a shard (Active, Draining,
	// Dead).
	FleetShardState = fleet.ShardState
	// FleetStats aggregates per-shard stats plus router counters.
	FleetStats = fleet.Stats
	// FleetMigration reports one completed drain or kill.
	FleetMigration = fleet.Migration
	// FleetTenant is one routed client identity.
	FleetTenant = fleet.Tenant
	// FleetTenantConfig sets a tenant's fair-share weight and cap.
	FleetTenantConfig = fleet.TenantConfig
	// FleetClient submits through the router; the fleet analogue of
	// BatcherClient.
	FleetClient = fleet.Client
	// FleetPending is one in-flight routed request.
	FleetPending = fleet.Pending
)

// Fleet shard states.
const (
	// ShardActive accepts placements and traffic.
	ShardActive = fleet.Active
	// ShardDraining is excluded from placement while in-flight work
	// quiesces.
	ShardDraining = fleet.Draining
	// ShardDead is migrated away and gone.
	ShardDead = fleet.Dead
)

// NewFleet boots cfg.Runtime.NumShards independent lakeD runtimes — one
// virtual clock each, shards model independent processes — behind the
// client-side router.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// Open-loop macro load generation (internal/loadgen): trace-driven replay
// of a million-client churning population against a fleet on the virtual
// clock, with per-tenant SLO attainment and knee-point location. The
// cmd/lakeload CLI wraps the same entry points.
type (
	// LoadScenario declares one macro workload: population, window,
	// tenant classes, rate shaping and fleet sizing.
	LoadScenario = loadgen.Scenario
	// LoadTenantClass is one scenario tenant: a mix, a Table 4 arrival
	// profile, a population share and SLO budgets.
	LoadTenantClass = loadgen.TenantClass
	// LoadResult is one replay's outcome: per-class attainment, stage
	// means and fleet counters.
	LoadResult = loadgen.Result
	// LoadSweepResult is a knee sweep over rate multipliers.
	LoadSweepResult = loadgen.SweepResult
)

// LoadScenarios returns the builtin macro scenarios (smoke, million,
// storm).
func LoadScenarios() []*LoadScenario { return loadgen.Builtins() }

// RunLoad replays a scenario to completion and reports results; fixed
// seeds replay byte-identically (see LoadResult.BenchJSON via
// loadgen.BenchJSON).
func RunLoad(s *LoadScenario) (*LoadResult, error) { return loadgen.Run(s) }

// RunLoadSweep replays a scenario at each rate multiplier and locates the
// knee: the highest rung that still meets every SLO budget.
func RunLoadSweep(s *LoadScenario, multipliers []float64) (*LoadSweepResult, error) {
	return loadgen.Sweep(s, multipliers)
}
