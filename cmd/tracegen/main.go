// Command tracegen synthesizes the block-I/O traces of §7.1 (Table 4) and
// prints their measured characteristics, optionally dumping the requests in
// CSV for external tools.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"lakego/internal/trace"
)

func main() {
	name := flag.String("trace", "azure", "profile: azure, bing-i, cosmos")
	n := flag.Int("n", 20000, "number of requests")
	seed := flag.Int64("seed", 42, "generator seed")
	rerate := flag.Float64("rerate", 1, "IOPS rerating factor (Mixed+ uses 3)")
	csv := flag.String("csv", "", "write requests to this CSV file")
	flag.Parse()

	var p trace.Profile
	switch strings.ToLower(*name) {
	case "azure":
		p = trace.Azure()
	case "bing-i", "bing":
		p = trace.BingI()
	case "cosmos":
		p = trace.Cosmos()
	default:
		log.Fatalf("unknown trace %q (azure, bing-i, cosmos)", *name)
	}
	p = p.Rerate(*rerate)
	reqs := p.Generate(*seed, *n)
	fmt.Printf("%s (rerate %.1fx): %s\n", p.Name, *rerate, trace.Measure(reqs))

	if *csv == "" {
		return
	}
	f, err := os.Create(*csv)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "arrival_us,offset,size,write")
	for _, r := range reqs {
		w := 0
		if r.Write {
			w = 1
		}
		fmt.Fprintf(f, "%d,%d,%d,%d\n", r.Arrival.Microseconds(), r.Offset, r.Size, w)
	}
	fmt.Printf("wrote %d requests to %s\n", len(reqs), *csv)
}
