// Command lakeload is the macro load generator: an open-loop,
// trace-driven replay of a huge churning client population against a full
// fleet runtime on the virtual clock, with SLO gating and knee-point
// location (see internal/loadgen for the model).
//
// Usage:
//
//	lakeload -list                     enumerate builtin scenarios
//	lakeload -scenario smoke           replay a builtin
//	lakeload -scenario storm.json      replay a scenario file
//	lakeload -scenario smoke -sweep 0.5,1,2,4,8
//	                                   knee sweep over rate multipliers
//	lakeload -scenario smoke -out results.json
//	                                   also write benchdiff-schema JSON;
//	                                   gate with `benchdiff -baseline
//	                                   BENCH_BASELINE.json results.json`
//	lakeload -scenario smoke -canon    print the validated scenario's
//	                                   canonical JSON and exit
//	lakeload -scenario smoke -live-slo attach a health plane to each
//	                                   replay, poll /slo.json over HTTP
//	                                   during the drive, and print the
//	                                   live vs driver attainment divergence
//
// Everything in the replay runs on the virtual clock, so a fixed-seed
// scenario produces byte-identical results JSON run over run — which is
// what lets CI commit the smoke scenario's numbers as a baseline and fail
// on system-level SLO regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	lake "lakego"
	"lakego/internal/loadgen"
)

// loadScenario resolves -scenario: a builtin name first, else a file.
func loadScenario(arg string) (*loadgen.Scenario, error) {
	if s, err := loadgen.BuiltinByName(arg); err == nil {
		return s, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("lakeload: %q is neither a builtin scenario nor a readable file: %w", arg, err)
	}
	return loadgen.ParseScenario(data)
}

// parseSweep parses the -sweep ladder.
func parseSweep(arg string) ([]float64, error) {
	var ms []float64
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("lakeload: bad -sweep multiplier %q: %w", part, err)
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("lakeload: -sweep needs at least one multiplier")
	}
	return ms, nil
}

// liveSLO aggregates -live-slo rows across the base run and sweep rungs:
// each replay gets a health plane served over loopback HTTP, polled at
// every virtual millisecond the way an operator's dashboard would scrape
// /slo.json, and the table at the end compares the plane's live view with
// the driver's omniscient per-arrival accounting.
type liveSLO struct {
	budget time.Duration // call-latency budget: the widest class p99 SLO

	mu   sync.Mutex
	rows []liveSLORow
}

type liveSLORow struct {
	multiplier float64
	driver     float64 // driver-side attainment over all arrivals
	live       float64 // plane-side call attainment, widest window (NaN: no traffic seen)
	polls      int
	incidents  int
}

// observer boots a health plane over one rung's fleet and serves it on a
// fresh loopback listener; the returned RunObserver polls it live.
func (ls *liveSLO) observer(f *lake.Fleet) loadgen.RunObserver {
	plane := f.NewHealthPlane(lake.HealthPlaneConfig{
		// Replays span virtual milliseconds, not wall minutes: shrink the
		// tick so the burn windows resolve inside the run.
		Tick:       time.Millisecond,
		ShortTicks: 5,
		LongTicks:  3600,
		Objectives: []lake.SLOObjective{{Name: "calls", Stage: "call", Budget: ls.budget, Target: 0.99}},
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lakeload: -live-slo listener: %v\n", err)
		return nil
	}
	srv := &http.Server{Handler: plane.Handler()}
	go func() { _ = srv.Serve(lis) }()
	return &liveSLOObserver{ls: ls, srv: srv, url: "http://" + lis.Addr().String()}
}

type liveSLOObserver struct {
	ls    *liveSLO
	srv   *http.Server
	url   string
	polls int
	last  lake.SLOSnapshot
	got   bool
}

// Tick scrapes /slo.json over real HTTP — the plane's handlers, transport
// and JSON shape are all on the measured path, not a shortcut into the
// plane's internals.
func (o *liveSLOObserver) Tick(at time.Duration) {
	resp, err := http.Get(o.url + "/slo.json")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var snap lake.SLOSnapshot
	if json.NewDecoder(resp.Body).Decode(&snap) == nil {
		o.last, o.got = snap, true
		o.polls++
	}
}

func (o *liveSLOObserver) Done(r *loadgen.Result) {
	o.Tick(0) // final scrape picks up the drained tail
	_ = o.srv.Close()
	live := math.NaN()
	incidents := 0
	if o.got {
		incidents = o.last.Incidents
		for _, ob := range o.last.Objectives {
			if ob.Name != "calls" || len(ob.Windows) == 0 {
				continue
			}
			if w := ob.Windows[len(ob.Windows)-1]; w.Good+w.Bad > 0 {
				live = w.Attainment
			}
		}
	}
	o.ls.mu.Lock()
	o.ls.rows = append(o.ls.rows, liveSLORow{
		multiplier: r.Scenario.RateMultiplier,
		driver:     r.Attainment,
		live:       live,
		polls:      o.polls,
		incidents:  incidents,
	})
	o.ls.mu.Unlock()
}

// summary renders the live-vs-driver attainment divergence table.
func (ls *liveSLO) summary() string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	out := fmt.Sprintf("live SLO (health plane polled per virtual ms, call budget %v):\n", ls.budget)
	out += fmt.Sprintf("  %10s %12s %12s %12s %6s %10s\n",
		"multiplier", "driver_att", "live_att", "divergence", "polls", "incidents")
	for _, row := range ls.rows {
		liveCol, divCol := "n/a", "n/a"
		if !math.IsNaN(row.live) {
			liveCol = fmt.Sprintf("%.3f%%", 100*row.live)
			divCol = fmt.Sprintf("%+.3f%%", 100*(row.driver-row.live))
		}
		out += fmt.Sprintf("  %10.3g %11.3f%% %12s %12s %6d %10d\n",
			row.multiplier, 100*row.driver, liveCol, divCol, row.polls, row.incidents)
	}
	out += "  divergence = driver-side attainment (all arrivals vs class SLOs) minus the\n" +
		"  plane's live call attainment; large gaps mean sheds or queueing the call\n" +
		"  histogram cannot see.\n"
	return out
}

// run is main minus the exit, so tests can drive the whole CLI path.
func run(scenarioArg, sweepArg, outPath, note string, seed int64, multiplier float64, canon, liveSLOFlag bool) error {
	s, err := loadScenario(scenarioArg)
	if err != nil {
		return err
	}
	if seed != 0 {
		s.Seed = seed
		s.RouterSeed = 0 // re-derive from the new seed
	}
	if multiplier != 0 {
		if err := s.Validate(); err != nil {
			return err
		}
		s.RateMultiplier *= multiplier
	}
	if canon {
		if err := s.Validate(); err != nil {
			return err
		}
		data, err := s.Canon()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}

	var agg *liveSLO
	if liveSLOFlag {
		budget := 5 * time.Millisecond
		for _, c := range s.Tenants {
			if b := time.Duration(c.SLOp99US * float64(time.Microsecond)); b > budget {
				budget = b
			}
		}
		agg = &liveSLO{budget: budget}
		s.Observer = agg.observer
	}

	result, err := loadgen.Run(s)
	if err != nil {
		return err
	}
	fmt.Print(result.Summary())

	var sweep *loadgen.SweepResult
	if sweepArg != "" {
		ms, err := parseSweep(sweepArg)
		if err != nil {
			return err
		}
		if sweep, err = loadgen.Sweep(s, ms); err != nil {
			return err
		}
		fmt.Print(sweep.Summary())
	}

	if agg != nil {
		fmt.Print(agg.summary())
	}

	if outPath != "" {
		if note == "" {
			note = fmt.Sprintf("generated by lakeload -scenario %s: open-loop macro replay, virtual-clock deterministic", s.Name)
		}
		data, err := loadgen.BenchJSON(note, []*loadgen.Result{result}, sweep)
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("lakeload: wrote results to %s\n", outPath)
	}
	return nil
}

func main() {
	list := flag.Bool("list", false, "list builtin scenarios and exit")
	scenario := flag.String("scenario", "smoke", "builtin scenario name or path to a scenario JSON file")
	sweepArg := flag.String("sweep", "", "comma-separated rate multipliers for a knee sweep (e.g. 0.5,1,2,4,8)")
	out := flag.String("out", "", "write benchdiff-schema results JSON to this file")
	note := flag.String("note", "", "note field for the results JSON")
	seed := flag.Int64("seed", 0, "override the scenario seed (0 keeps the scenario's)")
	multiplier := flag.Float64("multiplier", 0, "scale the scenario's offered rate (0 keeps it)")
	canon := flag.Bool("canon", false, "print the validated scenario's canonical JSON and exit")
	liveSLOFlag := flag.Bool("live-slo", false, "attach a health plane to each replay, poll /slo.json live, and print live-vs-driver attainment divergence")
	flag.Parse()

	if *list {
		for _, s := range loadgen.Builtins() {
			fmt.Printf("%-10s %8d clients %6.0fms %d shards, %d tenant classes\n",
				s.Name, s.Clients, s.DurationMS, max(s.Shards, 1), len(s.Tenants))
		}
		return
	}
	if err := run(*scenario, *sweepArg, *out, *note, *seed, *multiplier, *canon, *liveSLOFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
