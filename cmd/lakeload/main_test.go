package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"lakego/internal/loadgen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRunSmokeDeterministic pins the CLI's -out contract end to end: the
// smoke scenario plus a knee sweep writes the BENCH_BASELINE.json schema
// and — being virtual-clock derived — is byte-identical run over run,
// which is what lets CI gate the file with benchdiff.
func TestRunSmokeDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	for _, path := range []string{a, b} {
		if err := run("smoke", "1,2", path, "ci", 0, 0, false, false); err != nil {
			t.Fatal(err)
		}
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("results differ across identical runs:\n%s\nvs\n%s", da, db)
	}

	res := decodeResults(t, da)
	runG, ok := res["Lakeload/smoke"]
	if !ok {
		t.Fatalf("missing Lakeload/smoke group: %v", res)
	}
	if runG["arrivals"] <= 0 || runG["completed"] <= 0 || runG["offered_req_per_s"] <= 0 {
		t.Fatalf("run metrics not populated: %v", runG)
	}
	if runG["slo_attainment_pct"] <= 0 || runG["slo_attainment_pct"] > 100 {
		t.Fatalf("attainment out of range: %v", runG)
	}
	stages, ok := res["Lakeload/smoke/stages"]
	if !ok {
		t.Fatalf("missing stages group: %v", res)
	}
	for _, key := range []string{"calls", "per_call_ns", "exec_ns_mean", "boundary_ns_mean"} {
		if stages[key] <= 0 {
			t.Fatalf("stage metric %s not populated: %v", key, stages)
		}
	}
	knee, ok := res["Lakeload/smoke/knee"]
	if !ok {
		t.Fatalf("missing knee group: %v", res)
	}
	// The smoke budgets are calibrated so the base rate passes and the
	// first doubling sheds: the knee must sit at x1 with x2 failing.
	if knee["knee_multiplier"] != 1 || knee["first_failing_multiplier"] != 2 {
		t.Fatalf("smoke knee drifted (recalibrate budgets): %v", knee)
	}
	for _, tenant := range []string{"linnos", "kml", "mllb", "malware", "ecryptfs"} {
		g, ok := res["Lakeload/smoke/tenant="+tenant]
		if !ok {
			t.Fatalf("missing tenant group %s: %v", tenant, res)
		}
		if g["arrivals"] <= 0 || g["p99_us"] <= 0 {
			t.Fatalf("tenant %s metrics not populated: %v", tenant, g)
		}
	}
}

// TestResultsSchemaGolden pins the results JSON schema — every group name
// and every metric key — against a golden file, so a rename or removal
// that would silently orphan BENCH_BASELINE.json entries (benchdiff skips
// groups missing from either side) fails loudly here first. Regenerate
// with `go test ./cmd/lakeload -run Golden -update` after an intentional
// schema change, and update BENCH_BASELINE.json to match.
func TestResultsSchemaGolden(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.json")
	if err := run("smoke", "1,2", out, "schema", 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got := schemaOf(t, data)
	golden := filepath.Join("testdata", "results_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("results schema drifted from %s — update BENCH_BASELINE.json and regenerate with -update.\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// decodeResults parses the benchdiff baseline schema's benchmarks map.
func decodeResults(t *testing.T, data []byte) map[string]map[string]float64 {
	t.Helper()
	var res struct {
		Note       string                        `json:"note"`
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("results not in the baseline schema: %v", err)
	}
	return res.Benchmarks
}

// schemaOf flattens a results file to its schema: one line per group
// listing its sorted metric keys.
func schemaOf(t *testing.T, data []byte) string {
	t.Helper()
	res := decodeResults(t, data)
	groups := make([]string, 0, len(res))
	for g := range res {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	var b strings.Builder
	for _, g := range groups {
		keys := make([]string, 0, len(res[g]))
		for k := range res[g] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s: %s\n", g, strings.Join(keys, " "))
	}
	return b.String()
}

// TestScenarioFileRoundTrip drives the file path of -scenario: a canonical
// dump of a builtin replays from disk identically to the builtin itself.
func TestScenarioFileRoundTrip(t *testing.T) {
	s, err := loadScenario("storm")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	canon, err := s.Canon()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "storm.json")
	if err := os.WriteFile(file, canon, 0o644); err != nil {
		t.Fatal(err)
	}
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := run("storm", "", a, "x", 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(file, "", b, "x", 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Fatalf("file replay differs from builtin replay:\n%s\nvs\n%s", da, db)
	}
}

func TestLoadScenarioErrors(t *testing.T) {
	if _, err := loadScenario("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadScenario(bad); err == nil {
		t.Fatal("malformed scenario file accepted")
	}
}

// TestLiveSLOObserver drives the -live-slo path: a smoke replay with the
// observer attached must actually scrape the health plane over HTTP and
// record a live attainment row alongside the driver's.
func TestLiveSLOObserver(t *testing.T) {
	s, err := loadScenario("smoke")
	if err != nil {
		t.Fatal(err)
	}
	agg := &liveSLO{budget: 5 * time.Millisecond}
	s.Observer = agg.observer
	if _, err := loadgen.Run(s); err != nil {
		t.Fatal(err)
	}
	if len(agg.rows) != 1 {
		t.Fatalf("expected 1 live-SLO row, got %d", len(agg.rows))
	}
	row := agg.rows[0]
	if row.polls == 0 {
		t.Fatal("observer never scraped /slo.json")
	}
	if math.IsNaN(row.live) {
		t.Fatal("plane saw no call traffic during the replay")
	}
	if row.live <= 0 || row.live > 1 || row.driver <= 0 || row.driver > 1 {
		t.Fatalf("attainments out of range: live=%v driver=%v", row.live, row.driver)
	}
	sum := agg.summary()
	if !strings.Contains(sum, "divergence") || !strings.Contains(sum, "live_att") {
		t.Fatalf("summary missing table headers:\n%s", sum)
	}
}

func TestParseSweep(t *testing.T) {
	ms, err := parseSweep(" 0.5, 1 ,2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0] != 0.5 || ms[1] != 1 || ms[2] != 2 {
		t.Fatalf("parseSweep = %v", ms)
	}
	for _, bad := range []string{"", ",,", "1,x"} {
		if _, err := parseSweep(bad); err == nil {
			t.Fatalf("parseSweep(%q) accepted", bad)
		}
	}
}
