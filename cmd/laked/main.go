// Command laked demonstrates the lakeD daemon lifecycle: it boots a LAKE
// runtime, registers the built-in device kernels and a high-level API,
// serves a burst of remoted commands issued by a simulated kernel-space
// client, and prints the daemon-side statistics — the single-machine
// analogue of running the artifact's user-space daemon next to the kernel
// module.
package main

import (
	"flag"
	"fmt"
	"log"

	lake "lakego"
	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/shm"
)

func main() {
	calls := flag.Int("calls", 1000, "number of remoted vector-add rounds to serve")
	n := flag.Int("n", 256, "vector length per round")
	channel := flag.String("channel", "netlink", "command channel: netlink, signal, devrw, mmap")
	flag.Parse()

	cfg := lake.DefaultConfig()
	switch *channel {
	case "netlink":
		cfg.Channel = boundary.Netlink
	case "signal":
		cfg.Channel = boundary.Signal
	case "devrw":
		cfg.Channel = boundary.DeviceRW
	case "mmap":
		cfg.Channel = boundary.Mmap
	default:
		log.Fatalf("unknown channel %q", *channel)
	}
	rt, err := lake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterKernel(lake.VecAddKernel())

	// A custom high-level API, the §4.4 extension point.
	rt.Daemon().RegisterHighLevel("sum", func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
		var sum uint64
		for _, a := range args {
			sum += a
		}
		return []uint64{sum}, nil, cuda.Success
	})

	lib := rt.Lib()
	ctx, r := lib.CuCtxCreate("laked-demo")
	if r != lake.Success {
		log.Fatalf("cuCtxCreate: %s", r)
	}
	mod, _ := lib.CuModuleLoad("kernels.cubin")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	if r != lake.Success {
		log.Fatalf("cuModuleGetFunction: %s", r)
	}

	size := int64(4 * *n)
	a, err := rt.Region().Alloc(size)
	if err != nil {
		log.Fatal(err)
	}
	c, err := rt.Region().Alloc(size)
	if err != nil {
		log.Fatal(err)
	}
	vals := make([]float32, *n)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := cuda.PutFloat32s(a.Bytes(), vals); err != nil {
		log.Fatal(err)
	}
	da, _ := lib.CuMemAlloc(size)
	dc, _ := lib.CuMemAlloc(size)

	for i := 0; i < *calls; i++ {
		if r := lib.CuMemcpyHtoDShm(da, a, size); r != lake.Success {
			log.Fatalf("HtoD: %s", r)
		}
		if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(da), uint64(da), uint64(dc), uint64(*n)}); r != lake.Success {
			log.Fatalf("launch: %s", r)
		}
		if r := lib.CuMemcpyDtoHShm(c, dc, size); r != lake.Success {
			log.Fatalf("DtoH: %s", r)
		}
	}
	if vals2, _ := cuda.Float32s(c.Bytes(), *n); (*n) > 1 && vals2[1] != 2 {
		log.Fatalf("vecadd produced %v, want 2", vals2[1])
	}
	if sum, _, r := lib.CallHighLevel("sum", []uint64{40, 2}, nil); r != lake.Success || sum[0] != 42 {
		log.Fatalf("high-level sum = %v (%s)", sum, r)
	}

	st := rt.Stats()
	fmt.Println("lakeD served the kernel-space client:")
	fmt.Printf("  remoted calls        %d\n", st.RemotedCalls)
	fmt.Printf("  daemon handled       %d\n", st.DaemonHandled)
	fmt.Printf("  kernel launches      %d\n", st.KernelLaunches)
	fmt.Printf("  shm in use           %d bytes\n", st.ShmUsed)
	fmt.Printf("  modeled channel time %v\n", st.ChannelTime)
	fmt.Printf("  virtual time elapsed %v\n", st.VirtualTime)
}
