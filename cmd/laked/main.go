// Command laked demonstrates the lakeD daemon lifecycle: it boots a LAKE
// runtime, registers the built-in device kernels and a high-level API,
// serves a burst of remoted commands issued by a simulated kernel-space
// client, and prints the daemon-side statistics — the single-machine
// analogue of running the artifact's user-space daemon next to the kernel
// module.
//
// With -telemetry-addr the daemon also serves its observability plane over
// HTTP: /metrics (Prometheus text), /metrics.json (structured snapshot),
// /spans.json (per-call trace timelines, populated when -trace is set),
// /debug/pprof, and the live health plane — /healthz, /readyz, /statusz,
// /slo.json (rolling burn-rate/percentile state), /incidents.json
// (anomaly-triggered black-box bundles), /flightrec.tail?cursor= (live
// non-destructive event tailing), /flightrec.dump and /flightrec.json
// (on-demand flight-recorder snapshots, binary and JSON — feed either to
// cmd/laketrace; ?last=1 returns the retained automatic dump) and
// /models.json. With -serve it stays up after the demo burst so the
// endpoints can be scraped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"time"

	lake "lakego"
	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/linnos"
	"lakego/internal/nn"
	"lakego/internal/shm"
	"lakego/internal/storage"
	"lakego/internal/trace"
)

// serveTelemetry mounts the runtime's observability endpoints on the
// default mux (which already carries /debug/pprof from the blank import)
// and serves them in the background.
func serveTelemetry(rt *lake.Runtime, addr string) {
	tel := rt.Telemetry()
	if tel == nil {
		log.Fatal("-telemetry-addr requires telemetry (do not set -no-telemetry)")
	}
	http.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = tel.WritePrometheus(w)
	})
	http.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := tel.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})
	http.HandleFunc("/spans.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := tel.Tracer().TimelineJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})
	// The health plane serves the rest: /healthz, /readyz, /statusz,
	// /slo.json, /incidents.json, /flightrec.tail, /flightrec.{dump,json}
	// (on-demand snapshots; ?last=1 for the retained automatic dump) and
	// /models.json.
	plane := rt.NewHealthPlane(lake.HealthPlaneConfig{})
	planeHandler := plane.Handler()
	for _, p := range lake.HealthPlanePaths {
		http.Handle(p, planeHandler)
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Fatalf("telemetry endpoint: %v", err)
		}
	}()
	log.Printf("telemetry on http://%s/metrics (.json, /spans.json, /debug/pprof) + health plane (/healthz /readyz /statusz /slo.json /incidents.json /flightrec.tail /flightrec.{dump,json} /models.json)", addr)
}

// runLifecycleDemo is the -online-train path: boot the LinnOS latency
// classifier on an untrained base model, stream labeled I/O outcomes from
// a profiled trace through the lifecycle feedback channel, and let the
// in-daemon trainer retrain, shadow-score and hot-swap versions while the
// predictor keeps serving. Prints the registry at the end; with
// -telemetry-addr the registry is also live on /models.json.
func runLifecycleDemo(rt *lake.Runtime, cfg lake.ModelLifecycleConfig, samples int) {
	base := nn.New(3, linnos.Base.Sizes()...)
	pred, err := linnos.NewPredictor(rt, linnos.Base, base)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := rt.NewLifecycle(cfg, base)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Attach(pred.SwapNet); err != nil {
		log.Fatal(err)
	}

	reqs := trace.Profiles()[0].Rerate(3).Generate(42, samples)
	labeled, threshold := linnos.CollectSamples(storage.DefaultConfig("demo", 1), reqs)
	for _, s := range labeled {
		slow, _ := pred.InferCPU([][]float32{s.X})
		o := lake.ModelOutcome{X: s.X, Predicted: b2i(slow[0]), Label: b2i(s.Slow)}
		mgr.Observe(o)
		mgr.Pump() // in-process demo: service the trainer inline
	}

	st := mgr.Stats()
	fmt.Println("online model lifecycle (linnos, trace-fed):")
	fmt.Printf("  slow threshold       %v\n", threshold)
	fmt.Printf("  feedback samples     %d (dropped %d)\n", st.SamplesSeen, st.Dropped)
	fmt.Printf("  retrain steps        %d\n", st.RetrainSteps)
	fmt.Printf("  versions registered  %d, serving seq %d (hash %016x)\n", st.Versions, st.ServingSeq, st.ServingHash)
	fmt.Printf("  swaps %d, demotions %d, drift alarms %d, fallback %v\n", st.Swaps, st.Demotions, st.DriftAlarms, st.Fallback)
	fmt.Printf("  drift baseline %.3f (current partial window %.3f)\n", st.Baseline, st.LiveAccuracy)
	for _, v := range mgr.Registry().Versions() {
		mark := " "
		if v == mgr.Serving() {
			mark = "*"
		}
		fmt.Printf("  %s v%d %016x %-15s samples=%d parent=%d\n",
			mark, v.Seq, v.Hash, v.Meta.Note, v.Meta.Samples, v.Meta.ParentSeq)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// serveFleetTelemetry mounts the fleet's merged observability endpoints —
// the union of every shard's registry plus the router's own counters, all
// shard-labeled — and the shared flight recorder.
func serveFleetTelemetry(f *lake.Fleet, addr string) {
	if f.Telemetry() == nil {
		log.Fatal("-telemetry-addr requires telemetry (do not set -no-telemetry)")
	}
	http.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = io.WriteString(w, f.PrometheusText())
	})
	http.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := json.MarshalIndent(f.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})
	// Fleet health plane: per-shard /readyz, merged /slo.json, tailing of
	// the shared shard-stamped recorder, and incident capture with the
	// stall watchdog live (the fleet tracks per-shard outstanding work).
	plane := f.NewHealthPlane(lake.HealthPlaneConfig{})
	planeHandler := plane.Handler()
	for _, p := range lake.HealthPlanePaths {
		http.Handle(p, planeHandler)
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Fatalf("telemetry endpoint: %v", err)
		}
	}()
	log.Printf("fleet telemetry on http://%s/metrics (.json, /debug/pprof) + health plane (/healthz /readyz /statusz /slo.json /incidents.json /flightrec.tail /flightrec.{dump,json} /models.json)", addr)
}

// runFleetDemo is the -shards > 1 path: boot a fleet of independent lakeD
// shards behind the client-side router, drive a multi-tenant LinnOS
// inference storm through it, print the per-shard and router statistics,
// and finish with a live drain so the journal-handoff migration shows up
// in the demo output.
func runFleetDemo(cfg lake.Config, shards int, policy lake.PoolPolicy, calls int, telemetryAddr string, stay bool) {
	cfg.NumShards = shards
	cfg.RouterPolicy = policy
	f, err := lake.NewFleet(lake.FleetConfig{Runtime: cfg, Batcher: lake.DefaultBatcherConfig()})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if telemetryAddr != "" {
		serveFleetTelemetry(f, telemetryAddr)
	}
	net := nn.New(3, linnos.Base.Sizes()...)
	if err := f.RegisterModel(lake.BatcherModel{
		Name:       "linnos",
		InputWidth: linnos.InputWidth, OutputWidth: 2,
		MaxBatch:     linnos.MaxBatch,
		CPUPerItem:   linnos.Base.CPUInferCost(),
		FlopsPerItem: net.Flops(),
		Forward:      net.Forward,
	}); err != nil {
		log.Fatal(err)
	}

	const tenants = 8
	per := calls / tenants
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			c := f.Client(fmt.Sprintf("tenant-%d", t))
			for r := 0; r < per; r++ {
				x := linnos.FeatureVector((t*31+r*7)%97, []time.Duration{
					time.Duration((t+r)%11) * 200 * time.Microsecond,
				})
				if _, err := c.Infer("linnos", [][]float32{x}); err != nil {
					log.Fatalf("tenant %d: %v", t, err)
				}
			}
		}(t)
	}
	wg.Wait()

	st := f.Stats()
	fmt.Printf("lakeD fleet served %d tenants across %d shards (%s routing):\n",
		tenants, shards, f.Policy())
	fmt.Printf("  placements %d  reroutes %d  admission rejects %d\n",
		st.Placements, st.Reroutes, st.Rejects)
	for _, sh := range f.Shards() {
		bs := sh.Batcher().Stats()
		rst := sh.Runtime().Stats()
		fmt.Printf("  shard %d [%s]: %d requests, %d daemon handled, %d launches, %d flushes (avg batch %.1f), v=%v\n",
			sh.Ordinal(), sh.State(), bs.Requests, rst.DaemonHandled,
			rst.KernelLaunches, bs.Flushes, bs.AvgBatch(), sh.Clock().Now())
	}
	fmt.Printf("  fleet virtual elapsed (critical path) %v\n", f.VirtualElapsed())

	m, err := f.Drain(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  drained shard %d -> %d: %d journal entries crossed in a %dB sealed frame, %d tenants re-homed\n",
		m.Src, m.Dst, m.JournalEntries, m.HandoffBytes, m.Tenants)

	if stay && telemetryAddr != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		fmt.Println("serving fleet telemetry; ctrl-c to exit")
		<-sig
	}
}

func main() {
	calls := flag.Int("calls", 1000, "number of remoted vector-add rounds to serve")
	n := flag.Int("n", 256, "vector length per round")
	channel := flag.String("channel", "netlink", "command channel: netlink, signal, devrw, mmap")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /metrics.json, /spans.json and /debug/pprof on this address (e.g. :9090)")
	noTelemetry := flag.Bool("no-telemetry", false, "boot the runtime without the observability plane")
	traceCalls := flag.Bool("trace", false, "record per-call span timelines (see /spans.json)")
	serve := flag.Bool("serve", false, "after the demo burst, keep serving the telemetry endpoints until interrupted")
	devices := flag.Int("devices", 1, "number of modeled GPUs in the device pool")
	poolPolicy := flag.String("pool-policy", "contention-aware", "context placement policy: round-robin, least-outstanding, contention-aware")
	shards := flag.Int("shards", 1, "number of lakeD shards; >1 boots a fleet behind the client-side router")
	routerPolicy := flag.String("router-policy", "consistent-hash", "fleet shard placement policy: round-robin, least-outstanding, contention-aware, consistent-hash")
	onlineTrain := flag.Bool("online-train", false, "run the online model-lifecycle demo: in-daemon LinnOS retraining with shadow-scored hot-swaps (see /models.json)")
	trainSamples := flag.Int("train-samples", 4000, "trace I/Os to stream through the lifecycle feedback channel (with -online-train)")
	retrainMinibatch := flag.Int("retrain-minibatch", 64, "online SGD minibatch size (with -online-train)")
	retrainRound := flag.Int("retrain-round", 256, "feedback samples per retrain round before shadow scoring (with -online-train)")
	driftWindow := flag.Int("drift-window", 256, "outcomes per drift evaluation window (with -online-train)")
	driftTolerance := flag.Float64("drift-tolerance", 0.10, "live-accuracy drop below baseline marking a window bad (with -online-train)")
	flag.Parse()

	cfg := lake.DefaultConfig()
	cfg.NumDevices = *devices
	policy, err := lake.ParsePoolPolicy(*poolPolicy)
	if err != nil {
		log.Fatal(err)
	}
	cfg.PoolPolicy = policy
	switch *channel {
	case "netlink":
		cfg.Channel = boundary.Netlink
	case "signal":
		cfg.Channel = boundary.Signal
	case "devrw":
		cfg.Channel = boundary.DeviceRW
	case "mmap":
		cfg.Channel = boundary.Mmap
	default:
		log.Fatalf("unknown channel %q", *channel)
	}
	cfg.DisableTelemetry = *noTelemetry
	cfg.TraceCalls = *traceCalls
	if *shards > 1 {
		rp, err := lake.ParsePoolPolicy(*routerPolicy)
		if err != nil {
			log.Fatal(err)
		}
		runFleetDemo(cfg, *shards, rp, *calls, *telemetryAddr, *serve)
		return
	}
	rt, err := lake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	if *telemetryAddr != "" {
		serveTelemetry(rt, *telemetryAddr)
	}
	if *onlineTrain {
		lcfg := lake.DefaultLifecycleConfig("linnos-NN")
		lcfg.Minibatch = *retrainMinibatch
		lcfg.RoundSamples = *retrainRound
		lcfg.DriftWindow = *driftWindow
		lcfg.DriftTolerance = *driftTolerance
		runLifecycleDemo(rt, lcfg, *trainSamples)
		if *serve && *telemetryAddr != "" {
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt)
			fmt.Println("serving telemetry; ctrl-c to exit")
			<-sig
		}
		return
	}
	rt.RegisterKernel(lake.VecAddKernel())

	// A custom high-level API, the §4.4 extension point.
	rt.Daemon().RegisterHighLevel("sum", func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
		var sum uint64
		for _, a := range args {
			sum += a
		}
		return []uint64{sum}, nil, cuda.Success
	})

	lib := rt.Lib()
	ctx, r := lib.CuCtxCreate("laked-demo")
	if r != lake.Success {
		log.Fatalf("cuCtxCreate: %s", r)
	}
	mod, _ := lib.CuModuleLoad("kernels.cubin")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	if r != lake.Success {
		log.Fatalf("cuModuleGetFunction: %s", r)
	}

	size := int64(4 * *n)
	a, err := rt.Region().Alloc(size)
	if err != nil {
		log.Fatal(err)
	}
	c, err := rt.Region().Alloc(size)
	if err != nil {
		log.Fatal(err)
	}
	vals := make([]float32, *n)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := cuda.PutFloat32s(a.Bytes(), vals); err != nil {
		log.Fatal(err)
	}
	da, _ := lib.CuMemAlloc(size)
	dc, _ := lib.CuMemAlloc(size)

	for i := 0; i < *calls; i++ {
		if r := lib.CuMemcpyHtoDShm(da, a, size); r != lake.Success {
			log.Fatalf("HtoD: %s", r)
		}
		if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(da), uint64(da), uint64(dc), uint64(*n)}); r != lake.Success {
			log.Fatalf("launch: %s", r)
		}
		if r := lib.CuMemcpyDtoHShm(c, dc, size); r != lake.Success {
			log.Fatalf("DtoH: %s", r)
		}
	}
	if vals2, _ := cuda.Float32s(c.Bytes(), *n); (*n) > 1 && vals2[1] != 2 {
		log.Fatalf("vecadd produced %v, want 2", vals2[1])
	}
	if sum, _, r := lib.CallHighLevel("sum", []uint64{40, 2}, nil); r != lake.Success || sum[0] != 42 {
		log.Fatalf("high-level sum = %v (%s)", sum, r)
	}

	st := rt.Stats()
	fmt.Println("lakeD served the kernel-space client:")
	fmt.Printf("  remoted calls        %d\n", st.RemotedCalls)
	fmt.Printf("  daemon handled       %d\n", st.DaemonHandled)
	fmt.Printf("  kernel launches      %d\n", st.KernelLaunches)
	fmt.Printf("  shm in use           %d bytes\n", st.ShmUsed)
	fmt.Printf("  modeled channel time %v\n", st.ChannelTime)
	fmt.Printf("  virtual time elapsed %v\n", st.VirtualTime)
	if *devices > 1 {
		fmt.Printf("  device pool (%s placement):\n", rt.Pool().Policy())
		for _, acc := range rt.Pool().Accounting() {
			fmt.Printf("    gpu%d: %d launches, %d copies, %d bytes copied\n",
				acc.Ordinal, acc.Launches, acc.Copies, acc.CopyBytes)
		}
	}

	if *serve && *telemetryAddr != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		fmt.Println("serving telemetry; ctrl-c to exit")
		<-sig
	}
}
