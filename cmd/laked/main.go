// Command laked demonstrates the lakeD daemon lifecycle: it boots a LAKE
// runtime, registers the built-in device kernels and a high-level API,
// serves a burst of remoted commands issued by a simulated kernel-space
// client, and prints the daemon-side statistics — the single-machine
// analogue of running the artifact's user-space daemon next to the kernel
// module.
//
// With -telemetry-addr the daemon also serves its observability plane over
// HTTP: /metrics (Prometheus text), /metrics.json (structured snapshot),
// /spans.json (per-call trace timelines, populated when -trace is set),
// /flightrec.dump and /flightrec.json (on-demand flight-recorder snapshots,
// binary and JSON — feed either to cmd/laketrace) and /debug/pprof. With
// -serve it stays up after the demo burst so the endpoints can be scraped.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"

	lake "lakego"
	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/shm"
)

// serveTelemetry mounts the runtime's observability endpoints on the
// default mux (which already carries /debug/pprof from the blank import)
// and serves them in the background.
func serveTelemetry(rt *lake.Runtime, addr string) {
	tel := rt.Telemetry()
	if tel == nil {
		log.Fatal("-telemetry-addr requires telemetry (do not set -no-telemetry)")
	}
	http.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = tel.WritePrometheus(w)
	})
	http.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := tel.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})
	http.HandleFunc("/spans.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := tel.Tracer().TimelineJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})
	http.HandleFunc("/flightrec.dump", func(w http.ResponseWriter, req *http.Request) {
		rec := rt.FlightRecorder()
		if rec == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(rec.Snapshot("http").Encode())
	})
	http.HandleFunc("/flightrec.json", func(w http.ResponseWriter, req *http.Request) {
		rec := rt.FlightRecorder()
		if rec == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		b, err := rec.Snapshot("http").JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Fatalf("telemetry endpoint: %v", err)
		}
	}()
	log.Printf("telemetry on http://%s/metrics (.json, /spans.json, /flightrec.{dump,json}, /debug/pprof)", addr)
}

func main() {
	calls := flag.Int("calls", 1000, "number of remoted vector-add rounds to serve")
	n := flag.Int("n", 256, "vector length per round")
	channel := flag.String("channel", "netlink", "command channel: netlink, signal, devrw, mmap")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /metrics.json, /spans.json and /debug/pprof on this address (e.g. :9090)")
	noTelemetry := flag.Bool("no-telemetry", false, "boot the runtime without the observability plane")
	traceCalls := flag.Bool("trace", false, "record per-call span timelines (see /spans.json)")
	serve := flag.Bool("serve", false, "after the demo burst, keep serving the telemetry endpoints until interrupted")
	devices := flag.Int("devices", 1, "number of modeled GPUs in the device pool")
	poolPolicy := flag.String("pool-policy", "contention-aware", "context placement policy: round-robin, least-outstanding, contention-aware")
	flag.Parse()

	cfg := lake.DefaultConfig()
	cfg.NumDevices = *devices
	policy, err := lake.ParsePoolPolicy(*poolPolicy)
	if err != nil {
		log.Fatal(err)
	}
	cfg.PoolPolicy = policy
	switch *channel {
	case "netlink":
		cfg.Channel = boundary.Netlink
	case "signal":
		cfg.Channel = boundary.Signal
	case "devrw":
		cfg.Channel = boundary.DeviceRW
	case "mmap":
		cfg.Channel = boundary.Mmap
	default:
		log.Fatalf("unknown channel %q", *channel)
	}
	cfg.DisableTelemetry = *noTelemetry
	cfg.TraceCalls = *traceCalls
	rt, err := lake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	if *telemetryAddr != "" {
		serveTelemetry(rt, *telemetryAddr)
	}
	rt.RegisterKernel(lake.VecAddKernel())

	// A custom high-level API, the §4.4 extension point.
	rt.Daemon().RegisterHighLevel("sum", func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
		var sum uint64
		for _, a := range args {
			sum += a
		}
		return []uint64{sum}, nil, cuda.Success
	})

	lib := rt.Lib()
	ctx, r := lib.CuCtxCreate("laked-demo")
	if r != lake.Success {
		log.Fatalf("cuCtxCreate: %s", r)
	}
	mod, _ := lib.CuModuleLoad("kernels.cubin")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	if r != lake.Success {
		log.Fatalf("cuModuleGetFunction: %s", r)
	}

	size := int64(4 * *n)
	a, err := rt.Region().Alloc(size)
	if err != nil {
		log.Fatal(err)
	}
	c, err := rt.Region().Alloc(size)
	if err != nil {
		log.Fatal(err)
	}
	vals := make([]float32, *n)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := cuda.PutFloat32s(a.Bytes(), vals); err != nil {
		log.Fatal(err)
	}
	da, _ := lib.CuMemAlloc(size)
	dc, _ := lib.CuMemAlloc(size)

	for i := 0; i < *calls; i++ {
		if r := lib.CuMemcpyHtoDShm(da, a, size); r != lake.Success {
			log.Fatalf("HtoD: %s", r)
		}
		if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(da), uint64(da), uint64(dc), uint64(*n)}); r != lake.Success {
			log.Fatalf("launch: %s", r)
		}
		if r := lib.CuMemcpyDtoHShm(c, dc, size); r != lake.Success {
			log.Fatalf("DtoH: %s", r)
		}
	}
	if vals2, _ := cuda.Float32s(c.Bytes(), *n); (*n) > 1 && vals2[1] != 2 {
		log.Fatalf("vecadd produced %v, want 2", vals2[1])
	}
	if sum, _, r := lib.CallHighLevel("sum", []uint64{40, 2}, nil); r != lake.Success || sum[0] != 42 {
		log.Fatalf("high-level sum = %v (%s)", sum, r)
	}

	st := rt.Stats()
	fmt.Println("lakeD served the kernel-space client:")
	fmt.Printf("  remoted calls        %d\n", st.RemotedCalls)
	fmt.Printf("  daemon handled       %d\n", st.DaemonHandled)
	fmt.Printf("  kernel launches      %d\n", st.KernelLaunches)
	fmt.Printf("  shm in use           %d bytes\n", st.ShmUsed)
	fmt.Printf("  modeled channel time %v\n", st.ChannelTime)
	fmt.Printf("  virtual time elapsed %v\n", st.VirtualTime)
	if *devices > 1 {
		fmt.Printf("  device pool (%s placement):\n", rt.Pool().Policy())
		for _, acc := range rt.Pool().Accounting() {
			fmt.Printf("    gpu%d: %d launches, %d copies, %d bytes copied\n",
				acc.Ordinal, acc.Launches, acc.Copies, acc.CopyBytes)
		}
	}

	if *serve && *telemetryAddr != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		fmt.Println("serving telemetry; ctrl-c to exit")
		<-sig
	}
}
