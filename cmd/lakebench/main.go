// Command lakebench regenerates the tables and figures of the LAKE paper's
// evaluation.
//
// Usage:
//
//	lakebench -list            enumerate experiments
//	lakebench -exp fig7        run one experiment
//	lakebench -exp all         run everything (several minutes)
//
// Output is printed as the same rows/series the paper reports; see
// EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"flag"
	"fmt"
	"os"

	"lakego/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	out := flag.String("out", "", "also write the output to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: lakebench -exp <id>|all  (or -list)")
		os.Exit(2)
	}
	var output string
	var err error
	if *exp == "all" {
		output, err = experiments.RunAll()
	} else {
		output, err = experiments.Run(*exp)
	}
	fmt.Print(output)
	if *out != "" {
		if werr := os.WriteFile(*out, []byte(output), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "lakebench: write:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakebench:", err)
		os.Exit(1)
	}
}
