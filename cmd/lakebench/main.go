// Command lakebench regenerates the tables and figures of the LAKE paper's
// evaluation.
//
// Usage:
//
//	lakebench -list            enumerate experiments
//	lakebench -exp fig7        run one experiment
//	lakebench -exp all         run everything (several minutes)
//	lakebench -metrics         run an instrumented workload and dump its
//	                           telemetry (Prometheus text + span timeline)
//	lakebench -results BENCH_RESULTS.json
//	                           run the instrumented workload and write its
//	                           deterministic virtual-time metrics in the
//	                           BENCH_BASELINE.json schema; compare runs with
//	                           `benchdiff -baseline old.json BENCH_RESULTS.json`
//
// Output is printed as the same rows/series the paper reports; see
// EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	lake "lakego"
	"lakego/internal/cuda"
	"lakego/internal/experiments"
	"lakego/internal/flightrec"
	"lakego/internal/linnos"
	"lakego/internal/nn"
)

// bootInstrumented boots a runtime with tracing armed and drives the
// deterministic demo workload through it: 32 remoted
// copy-launch-copy rounds over the built-in vector-add kernel. Every cost
// in the run is virtual-clock modeled, so repeated runs produce identical
// numbers.
func bootInstrumented(devices int, poolPolicy lake.PoolPolicy) (*lake.Runtime, error) {
	cfg := lake.DefaultConfig()
	cfg.TraceCalls = true
	cfg.NumDevices = devices
	cfg.PoolPolicy = poolPolicy
	rt, err := lake.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := driveWorkload(rt); err != nil {
		rt.Close()
		return nil, err
	}
	return rt, nil
}

func driveWorkload(rt *lake.Runtime) error {
	rt.RegisterKernel(lake.VecAddKernel())
	lib := rt.Lib()
	ctx, r := lib.CuCtxCreate("lakebench-metrics")
	if r != lake.Success {
		return r.Err()
	}
	mod, _ := lib.CuModuleLoad("kernels.cubin")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	if r != lake.Success {
		return r.Err()
	}
	const n = 128
	size := int64(4 * n)
	in, err := rt.Region().Alloc(size)
	if err != nil {
		return err
	}
	out, err := rt.Region().Alloc(size)
	if err != nil {
		return err
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := cuda.PutFloat32s(in.Bytes(), vals); err != nil {
		return err
	}
	da, _ := lib.CuMemAlloc(size)
	dc, _ := lib.CuMemAlloc(size)
	for i := 0; i < 32; i++ {
		if r := lib.CuMemcpyHtoDShm(da, in, size); r != lake.Success {
			return r.Err()
		}
		if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(da), uint64(da), uint64(dc), uint64(n)}); r != lake.Success {
			return r.Err()
		}
		if r := lib.CuMemcpyDtoHShm(out, dc, size); r != lake.Success {
			return r.Err()
		}
	}
	if _, _, r := lib.NvmlGetUtilization(); r != lake.Success {
		return r.Err()
	}
	return nil
}

// bootFleet boots an instrumented fleet and drives a deterministic
// multi-tenant LinnOS storm through the client-side router: 2*shards
// tenants, 32 single-request inferences each, issued serially so tenant
// placement — and with it every per-shard virtual-time counter — is
// identical run over run under any routing policy.
func bootFleet(shards int, routerPolicy lake.PoolPolicy) (*lake.Fleet, error) {
	cfg := lake.DefaultConfig()
	cfg.TraceCalls = true
	cfg.NumShards = shards
	cfg.RouterPolicy = routerPolicy
	bcfg := lake.DefaultBatcherConfig()
	bcfg.Linger = 0
	f, err := lake.NewFleet(lake.FleetConfig{Runtime: cfg, Batcher: bcfg})
	if err != nil {
		return nil, err
	}
	net := nn.New(3, linnos.Base.Sizes()...)
	if err := f.RegisterModel(lake.BatcherModel{
		Name:       "linnos",
		InputWidth: linnos.InputWidth, OutputWidth: 2,
		MaxBatch:     linnos.MaxBatch,
		CPUPerItem:   linnos.Base.CPUInferCost(),
		FlopsPerItem: net.Flops(),
		Forward:      net.Forward,
	}); err != nil {
		f.Close()
		return nil, err
	}
	tenants := 2 * shards
	for r := 0; r < 32; r++ {
		for t := 0; t < tenants; t++ {
			x := linnos.FeatureVector((t*31+r*7)%97, []time.Duration{
				time.Duration((t+r)%11) * 200 * time.Microsecond,
			})
			if _, err := f.Client(fmt.Sprintf("tenant-%d", t)).Infer("linnos", [][]float32{x}); err != nil {
				f.Close()
				return nil, fmt.Errorf("tenant %d round %d: %w", t, r, err)
			}
		}
	}
	return f, nil
}

// runMetricsDemo prints the instrumented workload's Prometheus exposition
// followed by the traced span timeline — the CLI face of the observability
// plane. With devices > 1 the runtime boots a multi-GPU pool and the
// exposition carries per-device labeled series.
func runMetricsDemo(devices int, poolPolicy lake.PoolPolicy, shards int, routerPolicy lake.PoolPolicy) error {
	if shards > 1 {
		f, err := bootFleet(shards, routerPolicy)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Print(f.PrometheusText())
		return nil
	}
	rt, err := bootInstrumented(devices, poolPolicy)
	if err != nil {
		return err
	}
	defer rt.Close()
	tel := rt.Telemetry()
	fmt.Print(tel.PrometheusText())
	fmt.Println("--- span timeline (last traced calls) ---")
	b, err := tel.Tracer().TimelineJSON()
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// benchResults mirrors benchdiff's Baseline schema, so the file feeds
// straight into `benchdiff -baseline old.json BENCH_RESULTS.json` for
// run-over-run trajectory tracking.
type benchResults struct {
	Note       string                        `json:"note,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// writeResults runs the instrumented workload and records its
// machine-readable metrics: whole-run virtual-time throughput from the
// runtime counters plus the per-stage latency means the flight recorder's
// stitched timelines report (the Fig 5/6 stages). All values are
// virtual-clock derived and therefore deterministic run over run.
func writeResults(path string, devices int, poolPolicy lake.PoolPolicy, shards int, routerPolicy lake.PoolPolicy) error {
	if shards > 1 {
		return writeFleetResults(path, shards, routerPolicy)
	}
	rt, err := bootInstrumented(devices, poolPolicy)
	if err != nil {
		return err
	}
	defer rt.Close()

	st := rt.Stats()
	res := benchResults{
		Note:       "generated by lakebench -results: virtual-time metrics of the instrumented demo workload",
		Benchmarks: make(map[string]map[string]float64),
	}
	run := map[string]float64{
		"remoted_calls":   float64(st.RemotedCalls),
		"virtual_ns":      float64(st.VirtualTime),
		"channel_ns":      float64(st.ChannelTime),
		"kernel_launches": float64(st.KernelLaunches),
	}
	if st.VirtualTime > 0 {
		run["virtual_req_per_s"] = float64(st.RemotedCalls) / (float64(st.VirtualTime) / 1e9)
	}
	res.Benchmarks["Lakebench/run"] = run

	stitch := lake.StitchFlightDump(rt.FlightRecorder().Snapshot("lakebench-results"))
	if m := flightrec.MeasureStages(stitch.Timelines); m.Calls > 0 {
		res.Benchmarks["Lakebench/stages"] = map[string]float64{
			"calls":            float64(m.Calls),
			"per_call_ns":      m.PerCallNS,
			"queue_ns_mean":    m.QueueNS,
			"exec_ns_mean":     m.ExecNS,
			"copy_ns_mean":     m.CopyNS,
			"boundary_ns_mean": m.BoundaryNS,
		}
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("lakebench: wrote %d benchmark groups to %s\n", len(res.Benchmarks), path)
	return nil
}

// writeFleetResults is the -shards > 1 results path: the fleet storm's
// router counters plus one per-shard counter group, all virtual-clock
// derived and deterministic, in the same benchdiff-compatible schema.
func writeFleetResults(path string, shards int, routerPolicy lake.PoolPolicy) error {
	f, err := bootFleet(shards, routerPolicy)
	if err != nil {
		return err
	}
	defer f.Close()

	st := f.Stats()
	res := benchResults{
		Note:       "generated by lakebench -results -shards: virtual-time metrics of the fleet storm",
		Benchmarks: make(map[string]map[string]float64),
	}
	var requests int64
	for _, sh := range f.Shards() {
		requests += sh.Batcher().Stats().Requests
	}
	elapsed := f.VirtualElapsed()
	fleet := map[string]float64{
		"shards":     float64(shards),
		"requests":   float64(requests),
		"placements": float64(st.Placements),
		"reroutes":   float64(st.Reroutes),
		"virtual_ns": float64(elapsed),
	}
	if elapsed > 0 {
		fleet["virtual_req_per_s"] = float64(requests) / (float64(elapsed) / 1e9)
	}
	res.Benchmarks["Lakebench/fleet"] = fleet
	for _, sh := range f.Shards() {
		bs := sh.Batcher().Stats()
		rst := sh.Runtime().Stats()
		res.Benchmarks[fmt.Sprintf("Lakebench/fleet/shard=%d", sh.Ordinal())] = map[string]float64{
			"requests":        float64(bs.Requests),
			"flushes":         float64(bs.Flushes),
			"avg_batch":       bs.AvgBatch(),
			"daemon_handled":  float64(rst.DaemonHandled),
			"kernel_launches": float64(rst.KernelLaunches),
			"virtual_ns":      float64(sh.Clock().Now()),
		}
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("lakebench: wrote %d benchmark groups to %s\n", len(res.Benchmarks), path)
	return nil
}

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	out := flag.String("out", "", "also write the output to this file")
	metrics := flag.Bool("metrics", false, "run an instrumented demo workload and dump telemetry")
	results := flag.String("results", "", "run the instrumented workload and write machine-readable metrics (BENCH_BASELINE.json schema) to this file")
	devices := flag.Int("devices", 1, "number of modeled GPUs in the device pool (for -metrics)")
	poolPolicy := flag.String("pool-policy", "contention-aware", "context placement policy: round-robin, least-outstanding, contention-aware")
	shards := flag.Int("shards", 1, "number of lakeD shards; >1 runs the -metrics/-results workload through a fleet")
	routerPolicy := flag.String("router-policy", "consistent-hash", "fleet shard placement policy: round-robin, least-outstanding, contention-aware, consistent-hash")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}
	if *metrics || *results != "" {
		policy, err := lake.ParsePoolPolicy(*poolPolicy)
		if err != nil {
			log.Fatal(err)
		}
		rp, err := lake.ParsePoolPolicy(*routerPolicy)
		if err != nil {
			log.Fatal(err)
		}
		if *metrics {
			if err := runMetricsDemo(*devices, policy, *shards, rp); err != nil {
				log.Fatal(err)
			}
		}
		if *results != "" {
			if err := writeResults(*results, *devices, policy, *shards, rp); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: lakebench -exp <id>|all  (or -list, -metrics, -results out.json)")
		os.Exit(2)
	}
	var output string
	var err error
	if *exp == "all" {
		output, err = experiments.RunAll()
	} else {
		output, err = experiments.Run(*exp)
	}
	fmt.Print(output)
	if *out != "" {
		if werr := os.WriteFile(*out, []byte(output), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "lakebench: write:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakebench:", err)
		os.Exit(1)
	}
}
