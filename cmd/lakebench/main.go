// Command lakebench regenerates the tables and figures of the LAKE paper's
// evaluation.
//
// Usage:
//
//	lakebench -list            enumerate experiments
//	lakebench -exp fig7        run one experiment
//	lakebench -exp all         run everything (several minutes)
//	lakebench -metrics         run an instrumented workload and dump its
//	                           telemetry (Prometheus text + span timeline)
//
// Output is printed as the same rows/series the paper reports; see
// EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	lake "lakego"
	"lakego/internal/cuda"
	"lakego/internal/experiments"
)

// runMetricsDemo boots an instrumented runtime with tracing armed, pushes a
// short remoted workload through it, and prints the resulting Prometheus
// exposition followed by the traced span timeline — the CLI face of the
// observability plane. With devices > 1 the runtime boots a multi-GPU pool
// and the exposition carries per-device labeled series.
func runMetricsDemo(devices int, poolPolicy lake.PoolPolicy) error {
	cfg := lake.DefaultConfig()
	cfg.TraceCalls = true
	cfg.NumDevices = devices
	cfg.PoolPolicy = poolPolicy
	rt, err := lake.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	rt.RegisterKernel(lake.VecAddKernel())
	lib := rt.Lib()
	ctx, r := lib.CuCtxCreate("lakebench-metrics")
	if r != lake.Success {
		return r.Err()
	}
	mod, _ := lib.CuModuleLoad("kernels.cubin")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	if r != lake.Success {
		return r.Err()
	}
	const n = 128
	size := int64(4 * n)
	in, err := rt.Region().Alloc(size)
	if err != nil {
		return err
	}
	out, err := rt.Region().Alloc(size)
	if err != nil {
		return err
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := cuda.PutFloat32s(in.Bytes(), vals); err != nil {
		return err
	}
	da, _ := lib.CuMemAlloc(size)
	dc, _ := lib.CuMemAlloc(size)
	for i := 0; i < 32; i++ {
		if r := lib.CuMemcpyHtoDShm(da, in, size); r != lake.Success {
			return r.Err()
		}
		if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(da), uint64(da), uint64(dc), uint64(n)}); r != lake.Success {
			return r.Err()
		}
		if r := lib.CuMemcpyDtoHShm(out, dc, size); r != lake.Success {
			return r.Err()
		}
	}
	if _, _, r := lib.NvmlGetUtilization(); r != lake.Success {
		return r.Err()
	}

	tel := rt.Telemetry()
	fmt.Print(tel.PrometheusText())
	fmt.Println("--- span timeline (last traced calls) ---")
	b, err := tel.Tracer().TimelineJSON()
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	out := flag.String("out", "", "also write the output to this file")
	metrics := flag.Bool("metrics", false, "run an instrumented demo workload and dump telemetry")
	devices := flag.Int("devices", 1, "number of modeled GPUs in the device pool (for -metrics)")
	poolPolicy := flag.String("pool-policy", "contention-aware", "context placement policy: round-robin, least-outstanding, contention-aware")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}
	if *metrics {
		policy, err := lake.ParsePoolPolicy(*poolPolicy)
		if err != nil {
			log.Fatal(err)
		}
		if err := runMetricsDemo(*devices, policy); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: lakebench -exp <id>|all  (or -list, -metrics)")
		os.Exit(2)
	}
	var output string
	var err error
	if *exp == "all" {
		output, err = experiments.RunAll()
	} else {
		output, err = experiments.Run(*exp)
	}
	fmt.Print(output)
	if *out != "" {
		if werr := os.WriteFile(*out, []byte(output), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "lakebench: write:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakebench:", err)
		os.Exit(1)
	}
}
