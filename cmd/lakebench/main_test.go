package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	lake "lakego"
)

// TestWriteResultsDeterministic pins the -results contract: the file is in
// the BENCH_BASELINE.json schema, carries the run and per-stage metric
// groups, and — being virtual-clock derived — is byte-identical run over
// run, which is what makes a run-over-run benchdiff trajectory meaningful.
func TestWriteResultsDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := writeResults(a, 1, lake.PoolContentionAware); err != nil {
		t.Fatal(err)
	}
	if err := writeResults(b, 1, lake.PoolContentionAware); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("results differ across identical runs:\n%s\nvs\n%s", da, db)
	}

	var res benchResults
	if err := json.Unmarshal(da, &res); err != nil {
		t.Fatalf("results not in the baseline schema: %v", err)
	}
	run, ok := res.Benchmarks["Lakebench/run"]
	if !ok {
		t.Fatalf("missing Lakebench/run group: %v", res.Benchmarks)
	}
	if run["remoted_calls"] <= 0 || run["virtual_req_per_s"] <= 0 {
		t.Fatalf("run metrics not populated: %v", run)
	}
	stages, ok := res.Benchmarks["Lakebench/stages"]
	if !ok {
		t.Fatalf("missing Lakebench/stages group: %v", res.Benchmarks)
	}
	for _, key := range []string{"calls", "per_call_ns", "exec_ns_mean", "boundary_ns_mean"} {
		if stages[key] <= 0 {
			t.Fatalf("stage metric %s not populated: %v", key, stages)
		}
	}
}
