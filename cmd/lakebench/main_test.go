package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	lake "lakego"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteResultsDeterministic pins the -results contract: the file is in
// the BENCH_BASELINE.json schema, carries the run and per-stage metric
// groups, and — being virtual-clock derived — is byte-identical run over
// run, which is what makes a run-over-run benchdiff trajectory meaningful.
func TestWriteResultsDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := writeResults(a, 1, lake.PoolContentionAware, 1, lake.PoolConsistentHash); err != nil {
		t.Fatal(err)
	}
	if err := writeResults(b, 1, lake.PoolContentionAware, 1, lake.PoolConsistentHash); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("results differ across identical runs:\n%s\nvs\n%s", da, db)
	}

	var res benchResults
	if err := json.Unmarshal(da, &res); err != nil {
		t.Fatalf("results not in the baseline schema: %v", err)
	}
	run, ok := res.Benchmarks["Lakebench/run"]
	if !ok {
		t.Fatalf("missing Lakebench/run group: %v", res.Benchmarks)
	}
	if run["remoted_calls"] <= 0 || run["virtual_req_per_s"] <= 0 {
		t.Fatalf("run metrics not populated: %v", run)
	}
	stages, ok := res.Benchmarks["Lakebench/stages"]
	if !ok {
		t.Fatalf("missing Lakebench/stages group: %v", res.Benchmarks)
	}
	for _, key := range []string{"calls", "per_call_ns", "exec_ns_mean", "boundary_ns_mean"} {
		if stages[key] <= 0 {
			t.Fatalf("stage metric %s not populated: %v", key, stages)
		}
	}
}

// TestWriteFleetResultsDeterministic pins the -shards results contract:
// router plus per-shard counter groups, deterministic run over run.
func TestWriteFleetResultsDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	for _, path := range []string{a, b} {
		if err := writeResults(path, 1, lake.PoolContentionAware, 2, lake.PoolRoundRobin); err != nil {
			t.Fatal(err)
		}
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("fleet results differ across identical runs:\n%s\nvs\n%s", da, db)
	}
	var res benchResults
	if err := json.Unmarshal(da, &res); err != nil {
		t.Fatalf("results not in the baseline schema: %v", err)
	}
	fleet, ok := res.Benchmarks["Lakebench/fleet"]
	if !ok {
		t.Fatalf("missing Lakebench/fleet group: %v", res.Benchmarks)
	}
	if fleet["requests"] <= 0 || fleet["virtual_req_per_s"] <= 0 || fleet["shards"] != 2 {
		t.Fatalf("fleet metrics not populated: %v", fleet)
	}
	var requests float64
	for ord := 0; ord < 2; ord++ {
		sh, ok := res.Benchmarks[fmt.Sprintf("Lakebench/fleet/shard=%d", ord)]
		if !ok {
			t.Fatalf("missing shard %d group: %v", ord, res.Benchmarks)
		}
		requests += sh["requests"]
	}
	if requests != fleet["requests"] {
		t.Fatalf("per-shard requests sum %v != fleet total %v", requests, fleet["requests"])
	}
}

// TestResultsSchemaGolden pins the -results JSON schema — every group
// name and metric key — against a golden file, so a rename or removal
// that would silently orphan BENCH_BASELINE.json entries (benchdiff
// skips groups missing from either side) fails loudly here first.
// Regenerate with `go test ./cmd/lakebench -run Golden -update` after an
// intentional schema change, and update BENCH_BASELINE.json to match.
func TestResultsSchemaGolden(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.json")
	sharded := filepath.Join(dir, "sharded.json")
	if err := writeResults(single, 1, lake.PoolContentionAware, 1, lake.PoolConsistentHash); err != nil {
		t.Fatal(err)
	}
	if err := writeResults(sharded, 1, lake.PoolContentionAware, 2, lake.PoolRoundRobin); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, path := range []string{single, sharded} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var res benchResults
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatal(err)
		}
		groups := make([]string, 0, len(res.Benchmarks))
		for g := range res.Benchmarks {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		for _, g := range groups {
			keys := make([]string, 0, len(res.Benchmarks[g]))
			for k := range res.Benchmarks[g] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "%s: %s\n", g, strings.Join(keys, " "))
		}
	}
	got := b.String()
	golden := filepath.Join("testdata", "results_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("results schema drifted from %s — update BENCH_BASELINE.json and regenerate with -update.\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
