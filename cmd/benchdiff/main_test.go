package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchOutput fabricates `go test -bench -count=3` output for one
// benchmark with a wall ns/op series and a virtual throughput metric.
func benchOutput(nsPerOp, reqPerS float64) string {
	var b strings.Builder
	for i := 0; i < 3; i++ {
		// Vary the wall series like -count runs do; medians collapse it.
		jitter := float64(i-1) * 0.02 * nsPerOp
		b.WriteString("BenchmarkBatchedInference/clients=32-8   5   ")
		b.WriteString(formatF(nsPerOp+jitter) + " ns/op   " + formatF(reqPerS) + " batched_req_per_s\n")
	}
	b.WriteString("PASS\nok  \tlakego\t1.234s\n")
	return b.String()
}

func formatF(v float64) string {
	data, _ := json.Marshal(v)
	return string(data)
}

func TestParseBenchMedians(t *testing.T) {
	samples, err := parseBench(strings.NewReader(
		"goos: linux\n" +
			"BenchmarkPerfNNForward-16   100   50 ns/op\n" +
			"BenchmarkPerfNNForward-16   100   70 ns/op\n" +
			"BenchmarkPerfNNForward-16   100   60 ns/op\n" +
			"BenchmarkBatchedInference/clients=8-16  2  1000 ns/op  250.5 batched_req_per_s  3.2 speedup\n"))
	if err != nil {
		t.Fatal(err)
	}
	m := medians(samples)
	if got := m["BenchmarkPerfNNForward"]["ns/op"]; got != 60 {
		t.Fatalf("median ns/op = %v, want 60 (GOMAXPROCS suffix must be stripped)", got)
	}
	sub := m["BenchmarkBatchedInference/clients=8"]
	if sub["batched_req_per_s"] != 250.5 || sub["speedup"] != 3.2 {
		t.Fatalf("custom metrics not parsed: %+v", sub)
	}
}

func TestUpdateThenCompareClean(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	bench := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(bench, []byte(benchOutput(1e6, 40000)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-update", baseline, "-note", "test", bench}, &out, &errb); code != 0 {
		t.Fatalf("update exit %d: %s", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"-baseline", baseline, bench}, &out, &errb); code != 0 {
		t.Fatalf("identical run failed the gate (exit %d): %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "benchdiff: OK") {
		t.Fatalf("missing OK line:\n%s", out.String())
	}
}

// TestGateFailsOnSyntheticSlowdown is the CI acceptance scenario: a 20%
// throughput regression (slower wall time AND lower virtual throughput)
// must trip the 15% geomean gate.
func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	good := filepath.Join(dir, "good.txt")
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(good, []byte(benchOutput(1e6, 40000)), 0o644); err != nil {
		t.Fatal(err)
	}
	// 20% slowdown: ns/op up 25% (= 0.8x speed), req/s down 20%.
	if err := os.WriteFile(bad, []byte(benchOutput(1.25e6, 32000)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-update", baseline, good}, &out, &errb); code != 0 {
		t.Fatalf("update exit %d: %s", code, errb.String())
	}
	out.Reset()
	code := run([]string{"-baseline", baseline, bad}, &out, &errb)
	if code != 1 {
		t.Fatalf("20%% slowdown: exit %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "FAIL") {
		t.Fatalf("no FAIL diagnostic:\n%s", errb.String())
	}
	// A regression within tolerance must pass: 10% wall slowdown only.
	within := filepath.Join(dir, "within.txt")
	if err := os.WriteFile(within, []byte(benchOutput(1.1e6, 38000)), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", baseline, within}, &out, &errb); code != 0 {
		t.Fatalf("within-tolerance run tripped the gate (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}

func TestCompareDirections(t *testing.T) {
	base := map[string]map[string]float64{
		"B/x": {"ns/op": 100, "req_per_vs": 1000},
	}
	cur := map[string]map[string]float64{
		"B/x": {"ns/op": 50, "req_per_vs": 2000}, // both twice as fast
		"B/y": {"ns/op": 1},                      // new benchmark: ignored
	}
	deltas, geomean := compare(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	for _, d := range deltas {
		if d.speed != 2 {
			t.Fatalf("%s %s speed %v, want 2", d.bench, d.unit, d.speed)
		}
	}
	if geomean != 2 {
		t.Fatalf("geomean %v, want 2", geomean)
	}
}

// TestJSONResultsInput covers the lakebench -results handoff: the input may
// be an already-reduced JSON file in the Baseline schema instead of
// `go test -bench` text, and it gates the same way.
func TestJSONResultsInput(t *testing.T) {
	dir := t.TempDir()
	writeResults := func(name string, reqPerS, virtualNs float64) string {
		b := Baseline{
			Note: "test results",
			Benchmarks: map[string]map[string]float64{
				"Lakebench/run": {"virtual_req_per_s": reqPerS, "virtual_ns": virtualNs},
			},
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	baseline := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-update", baseline, writeResults("good.json", 40000, 1e9)}, &out, &errb); code != 0 {
		t.Fatalf("update from JSON results exit %d: %s", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"-baseline", baseline, writeResults("same.json", 40000, 1e9)}, &out, &errb); code != 0 {
		t.Fatalf("identical JSON results failed the gate (exit %d): %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "benchdiff: OK") {
		t.Fatalf("missing OK line:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	// 20% virtual-throughput regression must trip the gate, as with text input.
	if code := run([]string{"-baseline", baseline, writeResults("bad.json", 32000, 1.25e9)}, &out, &errb); code != 1 {
		t.Fatalf("regressed JSON results: exit %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	// Malformed JSON is rejected, not silently treated as empty bench text.
	broken := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(broken, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-baseline", baseline, broken}, &out, &errb); code != 2 {
		t.Fatalf("malformed JSON: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bad JSON results input") {
		t.Fatalf("unexpected diagnostic: %s", errb.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no mode: exit %d, want 2", code)
	}
	if code := run([]string{"-baseline", "a", "-update", "b"}, &out, &errb); code != 2 {
		t.Fatalf("both modes: exit %d, want 2", code)
	}
}

// TestAttainmentDirection pins the SLO metric directions: an attainment
// drop or a knee shifting to a lower multiplier is a regression (speed
// < 1), never an improvement — the direction hazard that would let an SLO
// collapse pass the gate as an apparent speedup.
func TestAttainmentDirection(t *testing.T) {
	base := map[string]map[string]float64{
		"Lakeload/smoke":      {"slo_attainment_pct": 99.9},
		"Lakeload/smoke/knee": {"knee_multiplier": 2},
		"Lakeload/smoke/t":    {"p99_attainment_pct": 99.5, "p99_us": 2000},
	}
	cur := map[string]map[string]float64{
		"Lakeload/smoke":      {"slo_attainment_pct": 49.95}, // halved: 0.5x
		"Lakeload/smoke/knee": {"knee_multiplier": 1},        // knee earlier: 0.5x
		"Lakeload/smoke/t":    {"p99_attainment_pct": 99.5, "p99_us": 4000},
	}
	deltas, _ := compare(base, cur)
	want := map[string]float64{
		"slo_attainment_pct": 0.5,
		"knee_multiplier":    0.5,
		"p99_attainment_pct": 1,
		"p99_us":             0.5, // latency doubled: also a 0.5x slowdown
	}
	for _, d := range deltas {
		if w, ok := want[d.unit]; !ok || d.speed != w {
			t.Fatalf("%s %s speed %v, want %v", d.bench, d.unit, d.speed, want[d.unit])
		}
		delete(want, d.unit)
	}
	if len(want) != 0 {
		t.Fatalf("metrics not compared: %v", want)
	}
}

// TestRequireGate covers -require: a baseline group under a required
// prefix that vanishes from the current input must fail the gate even
// though compare would silently skip it.
func TestRequireGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, benchmarks map[string]map[string]float64) string {
		data, err := json.MarshalIndent(Baseline{Benchmarks: benchmarks}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	full := map[string]map[string]float64{
		"Lakeload/smoke":      {"slo_attainment_pct": 99.9},
		"Lakeload/smoke/knee": {"knee_multiplier": 1},
		"Lakebench/run":       {"virtual_req_per_s": 40000},
	}
	baseline := write("base.json", full)
	var out, errb bytes.Buffer

	// All required groups present: passes.
	if code := run([]string{"-baseline", baseline, "-require", "Lakeload/", write("same.json", full)}, &out, &errb); code != 0 {
		t.Fatalf("complete run failed -require (exit %d): %s%s", code, out.String(), errb.String())
	}

	// The knee group vanished (say the sweep stopped running in CI): the
	// same input passes without -require and must fail with it.
	partial := map[string]map[string]float64{
		"Lakeload/smoke": {"slo_attainment_pct": 99.9},
		"Lakebench/run":  {"virtual_req_per_s": 40000},
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", baseline, write("partial.json", partial)}, &out, &errb); code != 0 {
		t.Fatalf("sanity: partial run without -require exit %d, want 0: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", baseline, "-require", "Lakeload/", write("partial2.json", partial)}, &out, &errb); code != 1 {
		t.Fatalf("missing required group: exit %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "Lakeload/smoke/knee") {
		t.Fatalf("missing group not named: %s", errb.String())
	}

	// A prefix the baseline has never seen is a misconfiguration, not a pass.
	errb.Reset()
	if code := run([]string{"-baseline", baseline, "-require", "Nope/", write("same2.json", full)}, &out, &errb); code != 2 {
		t.Fatalf("unmatched -require prefix: exit %d, want 2: %s", code, errb.String())
	}
}
