package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchOutput fabricates `go test -bench -count=3` output for one
// benchmark with a wall ns/op series and a virtual throughput metric.
func benchOutput(nsPerOp, reqPerS float64) string {
	var b strings.Builder
	for i := 0; i < 3; i++ {
		// Vary the wall series like -count runs do; medians collapse it.
		jitter := float64(i-1) * 0.02 * nsPerOp
		b.WriteString("BenchmarkBatchedInference/clients=32-8   5   ")
		b.WriteString(formatF(nsPerOp+jitter) + " ns/op   " + formatF(reqPerS) + " batched_req_per_s\n")
	}
	b.WriteString("PASS\nok  \tlakego\t1.234s\n")
	return b.String()
}

func formatF(v float64) string {
	data, _ := json.Marshal(v)
	return string(data)
}

func TestParseBenchMedians(t *testing.T) {
	samples, err := parseBench(strings.NewReader(
		"goos: linux\n" +
			"BenchmarkPerfNNForward-16   100   50 ns/op\n" +
			"BenchmarkPerfNNForward-16   100   70 ns/op\n" +
			"BenchmarkPerfNNForward-16   100   60 ns/op\n" +
			"BenchmarkBatchedInference/clients=8-16  2  1000 ns/op  250.5 batched_req_per_s  3.2 speedup\n"))
	if err != nil {
		t.Fatal(err)
	}
	m := medians(samples)
	if got := m["BenchmarkPerfNNForward"]["ns/op"]; got != 60 {
		t.Fatalf("median ns/op = %v, want 60 (GOMAXPROCS suffix must be stripped)", got)
	}
	sub := m["BenchmarkBatchedInference/clients=8"]
	if sub["batched_req_per_s"] != 250.5 || sub["speedup"] != 3.2 {
		t.Fatalf("custom metrics not parsed: %+v", sub)
	}
}

func TestUpdateThenCompareClean(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	bench := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(bench, []byte(benchOutput(1e6, 40000)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-update", baseline, "-note", "test", bench}, &out, &errb); code != 0 {
		t.Fatalf("update exit %d: %s", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"-baseline", baseline, bench}, &out, &errb); code != 0 {
		t.Fatalf("identical run failed the gate (exit %d): %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "benchdiff: OK") {
		t.Fatalf("missing OK line:\n%s", out.String())
	}
}

// TestGateFailsOnSyntheticSlowdown is the CI acceptance scenario: a 20%
// throughput regression (slower wall time AND lower virtual throughput)
// must trip the 15% geomean gate.
func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	good := filepath.Join(dir, "good.txt")
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(good, []byte(benchOutput(1e6, 40000)), 0o644); err != nil {
		t.Fatal(err)
	}
	// 20% slowdown: ns/op up 25% (= 0.8x speed), req/s down 20%.
	if err := os.WriteFile(bad, []byte(benchOutput(1.25e6, 32000)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-update", baseline, good}, &out, &errb); code != 0 {
		t.Fatalf("update exit %d: %s", code, errb.String())
	}
	out.Reset()
	code := run([]string{"-baseline", baseline, bad}, &out, &errb)
	if code != 1 {
		t.Fatalf("20%% slowdown: exit %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "FAIL") {
		t.Fatalf("no FAIL diagnostic:\n%s", errb.String())
	}
	// A regression within tolerance must pass: 10% wall slowdown only.
	within := filepath.Join(dir, "within.txt")
	if err := os.WriteFile(within, []byte(benchOutput(1.1e6, 38000)), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", baseline, within}, &out, &errb); code != 0 {
		t.Fatalf("within-tolerance run tripped the gate (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}

func TestCompareDirections(t *testing.T) {
	base := map[string]map[string]float64{
		"B/x": {"ns/op": 100, "req_per_vs": 1000},
	}
	cur := map[string]map[string]float64{
		"B/x": {"ns/op": 50, "req_per_vs": 2000}, // both twice as fast
		"B/y": {"ns/op": 1},                      // new benchmark: ignored
	}
	deltas, geomean := compare(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	for _, d := range deltas {
		if d.speed != 2 {
			t.Fatalf("%s %s speed %v, want 2", d.bench, d.unit, d.speed)
		}
	}
	if geomean != 2 {
		t.Fatalf("geomean %v, want 2", geomean)
	}
}

// TestJSONResultsInput covers the lakebench -results handoff: the input may
// be an already-reduced JSON file in the Baseline schema instead of
// `go test -bench` text, and it gates the same way.
func TestJSONResultsInput(t *testing.T) {
	dir := t.TempDir()
	writeResults := func(name string, reqPerS, virtualNs float64) string {
		b := Baseline{
			Note: "test results",
			Benchmarks: map[string]map[string]float64{
				"Lakebench/run": {"virtual_req_per_s": reqPerS, "virtual_ns": virtualNs},
			},
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	baseline := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-update", baseline, writeResults("good.json", 40000, 1e9)}, &out, &errb); code != 0 {
		t.Fatalf("update from JSON results exit %d: %s", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"-baseline", baseline, writeResults("same.json", 40000, 1e9)}, &out, &errb); code != 0 {
		t.Fatalf("identical JSON results failed the gate (exit %d): %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "benchdiff: OK") {
		t.Fatalf("missing OK line:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	// 20% virtual-throughput regression must trip the gate, as with text input.
	if code := run([]string{"-baseline", baseline, writeResults("bad.json", 32000, 1.25e9)}, &out, &errb); code != 1 {
		t.Fatalf("regressed JSON results: exit %d, want 1\n%s%s", code, out.String(), errb.String())
	}
	// Malformed JSON is rejected, not silently treated as empty bench text.
	broken := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(broken, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-baseline", baseline, broken}, &out, &errb); code != 2 {
		t.Fatalf("malformed JSON: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bad JSON results input") {
		t.Fatalf("unexpected diagnostic: %s", errb.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no mode: exit %d, want 2", code)
	}
	if code := run([]string{"-baseline", "a", "-update", "b"}, &out, &errb); code != 2 {
		t.Fatalf("both modes: exit %d, want 2", code)
	}
}
