// Command benchdiff gates benchmark regressions in CI.
//
// It parses `go test -bench` output (typically run with -count=5), reduces
// each benchmark's series to per-metric medians, and either records them as
// a baseline or compares them against a committed one:
//
//	go test -run '^$' -bench . -count=5 | tee bench.txt
//	benchdiff -update BENCH_BASELINE.json bench.txt   # refresh the baseline
//	benchdiff -baseline BENCH_BASELINE.json bench.txt # gate: exit 1 on regression
//
// The input may also be an already-reduced JSON results file in the
// baseline schema, such as `lakebench -results BENCH_RESULTS.json` emits:
//
//	benchdiff -baseline prev_results.json BENCH_RESULTS.json
//
// Comparison is throughput-oriented: each metric's current/baseline ratio
// is normalized so >1 means faster (higher-is-better metrics such as the
// benchmarks' virtual req/s series count up; lower-is-better ones such as
// ns/op count down), and the gate fails when the geometric mean across all
// matched metrics regresses by more than -threshold (default 15%).
// Wall-clock metrics wobble with CI load; the virtual-time throughput
// metrics the LAKE benchmarks report are deterministic, which is what makes
// a tight gate workable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference: per-benchmark, per-metric
// medians.
type Baseline struct {
	// Note documents how the file was produced.
	Note string `json:"note,omitempty"`
	// Benchmarks maps "BenchmarkName/sub" -> metric -> median value.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// parseBench extracts metric samples from `go test -bench` output. Each
// result line has the shape
//
//	BenchmarkName-8   3   123456 ns/op   456.7 custom_metric   1.2 other
//
// and repeats per -count run; samples accumulate per benchmark per metric.
func parseBench(r io.Reader) (map[string]map[string][]float64, error) {
	out := make(map[string]map[string][]float64)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so baselines survive machine changes.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q on line %q", fields[i], line)
			}
			if out[name] == nil {
				out[name] = make(map[string][]float64)
			}
			unit := fields[i+1]
			out[name][unit] = append(out[name][unit], v)
		}
	}
	return out, nil
}

// loadCurrent parses the run-under-test metrics from either input format:
// `go test -bench` text reduced to per-metric medians, or an
// already-reduced JSON results file in the Baseline schema (what
// `lakebench -results` emits), sniffed by its leading brace.
func loadCurrent(r io.Reader) (map[string]map[string]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			var res Baseline
			if err := json.Unmarshal(data, &res); err != nil {
				return nil, fmt.Errorf("benchdiff: bad JSON results input: %w", err)
			}
			return res.Benchmarks, nil
		}
		break
	}
	samples, err := parseBench(strings.NewReader(string(data)))
	if err != nil {
		return nil, err
	}
	return medians(samples), nil
}

// median reduces one metric's -count samples.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// medians collapses parsed samples to the baseline shape.
func medians(samples map[string]map[string][]float64) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(samples))
	for name, metrics := range samples {
		out[name] = make(map[string]float64, len(metrics))
		for unit, xs := range metrics {
			out[name][unit] = median(xs)
		}
	}
	return out
}

// higherIsBetter classifies a metric unit's direction. Throughput-style
// units count up, as do the lakeload SLO metrics (attainment percentages
// and knee multipliers — an attainment drop is a regression, not a
// speedup); times and latencies count down.
func higherIsBetter(unit string) bool {
	switch {
	case strings.Contains(unit, "req_per"), strings.HasSuffix(unit, "_per_s"),
		unit == "speedup", strings.Contains(unit, "/s"),
		strings.Contains(unit, "attainment"), strings.HasSuffix(unit, "multiplier"):
		return true
	default:
		// ns/op, B/op, allocs/op, *_us, *_ns, ...
		return false
	}
}

// delta is one compared metric.
type delta struct {
	bench, unit string
	base, cur   float64
	// speed is the normalized throughput ratio: >1 is faster than baseline.
	speed float64
}

// compare matches current medians against the baseline and returns the
// per-metric deltas plus their geometric-mean speed ratio. Benchmarks or
// metrics present on only one side are skipped (and reported by the
// caller): a gate must not fail just because a benchmark was added.
func compare(base, cur map[string]map[string]float64) (deltas []delta, geomean float64) {
	logSum, n := 0.0, 0
	for name, bm := range base {
		cm, ok := cur[name]
		if !ok {
			continue
		}
		for unit, bv := range bm {
			cv, ok := cm[unit]
			if !ok || bv <= 0 || cv <= 0 {
				continue
			}
			speed := cv / bv
			if !higherIsBetter(unit) {
				speed = bv / cv
			}
			deltas = append(deltas, delta{bench: name, unit: unit, base: bv, cur: cv, speed: speed})
			logSum += math.Log(speed)
			n++
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].bench != deltas[j].bench {
			return deltas[i].bench < deltas[j].bench
		}
		return deltas[i].unit < deltas[j].unit
	})
	if n == 0 {
		return deltas, 0
	}
	return deltas, math.Exp(logSum / float64(n))
}

// run is the testable entry point; returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "baseline JSON to compare against")
	updatePath := fs.String("update", "", "write medians from the bench output to this baseline JSON and exit")
	threshold := fs.Float64("threshold", 0.15, "maximum tolerated geomean throughput regression (0.15 = 15%)")
	note := fs.String("note", "", "provenance note stored with -update")
	require := fs.String("require", "", "comma-separated benchmark-name prefixes that must be present: every baseline benchmark with such a prefix must also appear in the current input")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*baselinePath == "") == (*updatePath == "") {
		fmt.Fprintln(stderr, "benchdiff: exactly one of -baseline or -update is required")
		return 2
	}
	var in io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	cur, err := loadCurrent(in)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(cur) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark results in input")
		return 2
	}

	if *updatePath != "" {
		b := Baseline{Note: *note, Benchmarks: cur}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		if err := os.WriteFile(*updatePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: wrote %d benchmarks to %s\n", len(cur), *updatePath)
		return 0
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		return 2
	}
	// -require closes the silent-skip hazard for gated suites: compare
	// drops benchmarks present on only one side, so a renamed or
	// no-longer-emitted group would otherwise pass the gate by vanishing.
	for _, prefix := range strings.Split(*require, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix == "" {
			continue
		}
		matched := 0
		var missing []string
		for name := range base.Benchmarks {
			if !strings.HasPrefix(name, prefix) {
				continue
			}
			matched++
			if _, ok := cur[name]; !ok {
				missing = append(missing, name)
			}
		}
		if matched == 0 {
			fmt.Fprintf(stderr, "benchdiff: -require %s: baseline %s has no benchmarks with that prefix\n", prefix, *baselinePath)
			return 2
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			fmt.Fprintf(stderr, "benchdiff: FAIL: required benchmarks missing from current run: %s\n", strings.Join(missing, ", "))
			return 1
		}
	}
	deltas, geomean := compare(base.Benchmarks, cur)
	if len(deltas) == 0 {
		fmt.Fprintln(stderr, "benchdiff: baseline and bench output share no metrics")
		return 2
	}
	w := func(format string, a ...interface{}) { fmt.Fprintf(stdout, format, a...) }
	w("%-52s %-22s %14s %14s %8s\n", "benchmark", "metric", "baseline", "current", "speed")
	for _, d := range deltas {
		w("%-52s %-22s %14.4g %14.4g %7.3fx\n", d.bench, d.unit, d.base, d.cur, d.speed)
	}
	for name := range base.Benchmarks {
		if _, ok := cur[name]; !ok {
			w("note: baseline benchmark %s missing from current run\n", name)
		}
	}
	// Benchmarks the baseline has never seen are informational only: they
	// cannot gate (there is nothing to compare against) but flagging them
	// reminds the committer to refresh the baseline with -update.
	var added []string
	for name := range cur {
		if _, ok := base.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		w("note: benchmark %s not in baseline (informational; refresh with -update)\n", name)
	}
	w("geomean speed ratio %.4fx over %d metrics (gate: >= %.4fx)\n",
		geomean, len(deltas), 1-*threshold)
	if geomean < 1-*threshold {
		fmt.Fprintf(stderr, "benchdiff: FAIL: geomean throughput regressed %.1f%% (> %.0f%% tolerated)\n",
			(1-geomean)*100, *threshold*100)
		return 1
	}
	w("benchdiff: OK\n")
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
