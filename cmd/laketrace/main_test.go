package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	lake "lakego"
	"lakego/internal/cuda"
	"lakego/internal/nn"
)

// produceDump boots an instrumented runtime, pushes a short remoted
// workload through it, and snapshots the flight recorder — the same
// artifact laked's /flightrec.dump endpoint serves.
func produceDump(t *testing.T) *lake.FlightDump {
	t.Helper()
	cfg := lake.DefaultConfig()
	cfg.TraceCalls = true
	rt, err := lake.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rt.RegisterKernel(lake.VecAddKernel())
	lib := rt.Lib()
	ctx, r := lib.CuCtxCreate("laketrace-test")
	if r != lake.Success {
		t.Fatal(r)
	}
	mod, _ := lib.CuModuleLoad("kernels.cubin")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	if r != lake.Success {
		t.Fatal(r)
	}
	const n = 32
	size := int64(4 * n)
	in, err := rt.Region().Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rt.Region().Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := cuda.PutFloat32s(in.Bytes(), vals); err != nil {
		t.Fatal(err)
	}
	da, _ := lib.CuMemAlloc(size)
	dc, _ := lib.CuMemAlloc(size)
	for i := 0; i < 8; i++ {
		if r := lib.CuMemcpyHtoDShm(da, in, size); r != lake.Success {
			t.Fatal(r)
		}
		if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(da), uint64(da), uint64(dc), uint64(n)}); r != lake.Success {
			t.Fatal(r)
		}
		if r := lib.CuMemcpyDtoHShm(out, dc, size); r != lake.Success {
			t.Fatal(r)
		}
	}
	rec := rt.FlightRecorder()
	if rec == nil {
		t.Fatal("telemetry-enabled runtime has no flight recorder")
	}
	return rec.Snapshot("laketrace-test")
}

func TestLaketraceEndToEnd(t *testing.T) {
	dump := produceDump(t)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "dump.bin")
	if err := os.WriteFile(binPath, dump.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonBytes, err := dump.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "dump.json")
	if err := os.WriteFile(jsonPath, jsonBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{binPath, jsonPath} {
		var stdout, stderr bytes.Buffer
		chromePath := filepath.Join(dir, "trace.json")
		code := run([]string{"-tail", "0.9", "-calls", "-chrome", chromePath, path}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("laketrace %s exited %d: %s", path, code, stderr.String())
		}
		out := stdout.String()
		for _, want := range []string{
			"calls stitched", "cuLaunchKernel", "cuMemcpyHtoD",
			"tail is dominated by", "wrote Chrome trace",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("laketrace %s output missing %q:\n%s", path, want, out)
			}
		}
		// Every remoted call in this clean run must stitch completely:
		// the summary reads "N calls stitched: N completed, N with ...".
		var stitched, completed, complete int
		line := out[strings.Index(out, "\n")+1:]
		if _, err := fmt.Sscanf(line, "%d calls stitched: %d completed, %d",
			&stitched, &completed, &complete); err != nil {
			t.Fatalf("cannot parse summary line from %s:\n%s", path, out)
		}
		if stitched == 0 || stitched != completed || completed != complete {
			t.Fatalf("clean run did not reconstruct all calls (%d/%d/%d):\n%s",
				stitched, completed, complete, out)
		}
		chrome, err := os.ReadFile(chromePath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(chrome, []byte(`"traceEvents"`)) || !bytes.Contains(chrome, []byte(`"ph": "X"`)) {
			t.Fatalf("chrome trace from %s lacks trace_event records", path)
		}
	}
}

func TestLaketraceRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bogus")
	if err := os.WriteFile(path, []byte("not a dump"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d for garbage input, want 2", code)
	}
	if !strings.Contains(stderr.String(), "not a flight-recorder dump") {
		t.Fatalf("unexpected error output: %s", stderr.String())
	}
}

// produceFleetDump pushes a short storm through a 2-shard fleet, drains
// shard 0 mid-run, and snapshots the fleet's shared flight recorder — the
// routing-enabled sibling of produceDump.
func produceFleetDump(t *testing.T) *lake.FlightDump {
	t.Helper()
	rcfg := lake.DefaultConfig()
	rcfg.TraceCalls = true
	rcfg.NumShards = 2
	rcfg.RouterPolicy = lake.PoolRoundRobin
	bcfg := lake.DefaultBatcherConfig()
	bcfg.MaxBatch = 4
	bcfg.MaxWait = 100 * time.Microsecond
	bcfg.Linger = 0
	f, err := lake.NewFleet(lake.FleetConfig{Runtime: rcfg, Batcher: bcfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	net := nn.New(7, 4, 8, 2)
	if err := f.RegisterModel(lake.BatcherModel{
		Name: "tracenet", InputWidth: 4, OutputWidth: 2, MaxBatch: 8,
		FlopsPerItem: net.Flops(), Forward: net.Forward,
	}); err != nil {
		t.Fatal(err)
	}
	infer := func(tenant string) {
		c := f.Client(tenant)
		for r := 0; r < 8; r++ {
			if _, err := c.Infer("tracenet", [][]float32{{1, 2, 3, float32(r)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	infer("tenant-a")
	infer("tenant-b")
	if _, err := f.Drain(0); err != nil {
		t.Fatal(err)
	}
	infer("tenant-a") // re-routed traffic after the drain
	dump := f.Recorder().TriggerDump("laketrace-fleet-test")
	if dump == nil {
		t.Fatal("fleet has no flight-recorder dump")
	}
	return dump
}

func TestLaketraceFleetRouting(t *testing.T) {
	dump := produceFleetDump(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.bin")
	if err := os.WriteFile(path, dump.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-calls", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("laketrace exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"router: ",
		"calls per shard:",
		"migration: shard 0 -> 1",
		"shard", // the -calls column
		"route(w)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("laketrace fleet output missing %q:\n%s", want, out)
		}
	}
}
