// Command laketrace analyzes LAKE flight-recorder dumps: the execution
// traces the always-on internal/flightrec rings capture across the
// kernel/user boundary. (Synthetic block-I/O *workload* traces are
// cmd/tracegen's job; laketrace reads what the stack actually did.)
//
// It stitches each remoted call's events back into one cross-domain
// timeline — client serialize → boundary crossing → daemon queue → exec →
// copy → response — keyed by the trace ID the wire protocol carries, then
// reports where the microseconds went:
//
//	laketrace dump.bin                     # per-API stage breakdown (Fig 5/6 shape)
//	laketrace -tail 0.99 dump.json         # which stage dominates the p99
//	laketrace -chrome trace.json dump.bin  # Chrome trace_event JSON for Perfetto
//	laketrace -calls dump.bin              # per-call timeline listing
//
// Dumps come from laked's /flightrec.dump and /flightrec.json endpoints,
// from automatic supervisor/crash triggers, or from test-failure artifacts;
// both the binary and JSON encodings are accepted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/remoting"
)

func apiName(id uint64) string { return remoting.APIID(id).String() }

// routerSummary reports fleet routing activity when the dump carries any:
// placements and re-routes from the router domain, each completed
// migration, and how the stitched calls spread across shards. Single-shard
// dumps have no router domain traffic and print nothing.
func routerSummary(w io.Writer, d *flightrec.Dump, res *flightrec.StitchResult) {
	var placements, reroutes int
	var migrations []flightrec.Event
	for _, dd := range d.Domains {
		if dd.Domain != flightrec.DomainRouter {
			continue
		}
		for _, e := range dd.Events {
			switch e.Kind {
			case flightrec.EvRoute:
				placements++
				if e.Arg1 == 1 {
					reroutes++
				}
			case flightrec.EvMigrateEnd:
				migrations = append(migrations, e)
			}
		}
	}
	if placements == 0 && len(migrations) == 0 {
		return
	}
	perShard := make(map[int]int)
	maxShard := 0
	for _, t := range res.Timelines {
		perShard[t.Shard]++
		if t.Shard > maxShard {
			maxShard = t.Shard
		}
	}
	spread := ""
	for s := 0; s <= maxShard; s++ {
		spread += fmt.Sprintf(" %d:%d", s, perShard[s])
	}
	fmt.Fprintf(w, "router: %d placements (%d re-routed), %d migrations; calls per shard:%s\n",
		placements, reroutes, len(migrations), spread)
	for _, e := range migrations {
		fmt.Fprintf(w, "  migration: shard %d -> %d, %d journal entries moved\n",
			e.Arg0, e.Arg1, e.Arg2)
	}
}

// run is the testable entry point; returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("laketrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	breakdown := fs.Bool("breakdown", true, "print the per-API stage breakdown table")
	tail := fs.Float64("tail", 0, "attribute tail latency at this quantile (e.g. 0.99); 0 disables")
	chrome := fs.String("chrome", "", "write Chrome trace_event JSON (Perfetto) to this file")
	calls := fs.Bool("calls", false, "list every stitched call timeline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: laketrace [-breakdown] [-tail q] [-chrome out.json] [-calls] <dump>")
		return 2
	}
	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(stderr, "laketrace:", err)
		return 2
	}
	dump, err := flightrec.ReadDump(data)
	if err != nil {
		fmt.Fprintln(stderr, "laketrace:", err)
		return 2
	}
	res := flightrec.Stitch(dump)

	fmt.Fprintf(stdout, "dump %q at v=%v: %d events across %d domains, %d dropped\n",
		dump.Reason, dump.VNow, dump.TotalEvents(), len(dump.Domains), res.Dropped)
	fmt.Fprintf(stdout, "%d calls stitched: %d completed, %d with the full cross-domain chain\n",
		len(res.Timelines), res.Completed, res.Complete)
	routerSummary(stdout, dump, res)

	if *breakdown {
		fmt.Fprint(stdout, "\n", flightrec.BreakdownTable(res.Timelines, apiName))
	}
	if *tail > 0 {
		fmt.Fprint(stdout, "\n", flightrec.TailAttribution(res.Timelines, *tail, apiName))
	}
	if *calls {
		fmt.Fprintf(stdout, "\n%-10s %-24s %8s %5s %10s %8s %s\n", "trace", "api", "seq", "shard", "total_us", "retries", "missing")
		for _, t := range res.Timelines {
			missing := ""
			if len(t.Missing) > 0 {
				missing = fmt.Sprint(t.Missing)
			}
			fmt.Fprintf(stdout, "%-10d %-24s %8d %5d %10.2f %8d %s\n",
				t.TraceID, apiName(t.API), t.Seq, t.Shard, float64(t.Total())/float64(time.Microsecond), t.Retries, missing)
		}
	}
	if *chrome != "" {
		b, err := flightrec.ChromeTrace(res, apiName)
		if err != nil {
			fmt.Fprintln(stderr, "laketrace:", err)
			return 2
		}
		if err := os.WriteFile(*chrome, b, 0o644); err != nil {
			fmt.Fprintln(stderr, "laketrace:", err)
			return 2
		}
		fmt.Fprintf(stdout, "\nwrote Chrome trace (%d bytes) to %s — load in chrome://tracing or ui.perfetto.dev\n",
			len(b), *chrome)
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
