// Ring-transport acceptance: the descriptor-ring boundary must beat the
// channel transport by >= 2x on modeled single-call latency, produce
// bit-identical results under every chaos mix (the transports differ only in
// cost and mechanics, never in semantics), and coalesce doorbell wakeups so
// a burst of frames pays far fewer wakes than sends.
package lake_test

import (
	"testing"
	"time"

	lake "lakego"
	"lakego/internal/boundary"
	"lakego/internal/core"
)

// TestRingCallSpeedup pins the headline acceptance number: a single remoted
// call over the descriptor ring costs at least 2x less modeled (virtual)
// time than the same call over the paper's Netlink channel.
func TestRingCallSpeedup(t *testing.T) {
	perCall := func(cfg core.Config) time.Duration {
		rt, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		lib := rt.Lib()
		const calls = 200
		start := rt.Clock().Now()
		for i := 0; i < calls; i++ {
			if _, r := lib.CuDeviceGetCount(); r != lake.Success {
				t.Fatal(r)
			}
		}
		return (rt.Clock().Now() - start) / calls
	}
	netlink := perCall(core.DefaultConfig())
	ring := perCall(ringConfig())
	t.Logf("single-call latency: netlink %v, ring %v, speedup %.2fx",
		netlink, ring, float64(netlink)/float64(ring))
	if float64(netlink) < 2*float64(ring) {
		t.Fatalf("ring single-call latency %v not >= 2x faster than netlink %v", ring, netlink)
	}
}

// TestRingChaosBitIdentical is the transport-equivalence gate: every chaos
// mix of the sweep, run over the ring transport, must produce byte-identical
// predictions to the clean channel-transport run, with exactly-once
// execution preserved (zero lost, zero re-executed). This is what licenses
// keeping the legacy channel transport behind a config switch — the two
// differ only in cost model and mechanics.
func TestRingChaosBitIdentical(t *testing.T) {
	rounds, batch := chaosRounds(), 16

	// Reference: clean run on the legacy channel transport.
	clean := newChaosStackOn(t, nil, lake.Netlink)
	cleanDigest, _ := runChaosWorkloads(t, clean, rounds, batch)
	cleanExec := clean.rt.Daemon().Executed()

	mixes := []struct {
		name string
		mix  *lake.FaultMix
		long bool
	}{
		{"clean", nil, false},
		{"drop5", &lake.FaultMix{Drop: 0.05, Seed: 102}, false},
		{"dup2", &lake.FaultMix{Duplicate: 0.02, Seed: 103}, true},
		{"corrupt1", &lake.FaultMix{Corrupt: 0.01, Seed: 104}, true},
		{"crash", &lake.FaultMix{Crash: 0.01, Seed: 106}, false},
		{"mixed", &lake.FaultMix{
			Drop: 0.05, Corrupt: 0.01, Duplicate: 0.02,
			Delay: 0.1, DelayMin: 20 * time.Microsecond, DelayMax: 60 * time.Microsecond,
			Crash: 0.005, Seed: 107,
		}, false},
	}
	for _, tc := range mixes {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.long && testing.Short() {
				t.Skip("reduced sweep in -short")
			}
			s := newChaosStackOn(t, tc.mix, lake.Ring)
			digest, _ := runChaosWorkloads(t, s, rounds, batch)
			if len(digest) != len(cleanDigest) {
				t.Fatalf("digest length %d != clean channel run %d", len(digest), len(cleanDigest))
			}
			for i := range digest {
				if digest[i] != cleanDigest[i] {
					t.Fatalf("prediction %d diverged from channel transport: %d vs %d",
						i, digest[i], cleanDigest[i])
				}
			}
			// Exactly-once across the transport swap: same distinct commands
			// executed, none lost, no redelivery re-executed.
			if got := s.rt.Daemon().Executed(); got != cleanExec {
				t.Fatalf("ring daemon executed %d distinct commands, channel executed %d", got, cleanExec)
			}
			rs := s.rt.Lib().ResilienceStats()
			if rs.DaemonDead != 0 || rs.DeadlineExceeded != 0 {
				t.Fatalf("abandoned calls under %s: %+v", tc.name, rs)
			}
			if tc.mix != nil {
				fs := s.rt.FaultPlane().Stats()
				if fs.Dropped+fs.Corrupted+fs.Duplicated+fs.Delayed+fs.Crashes() == 0 {
					t.Fatalf("mix %s injected no faults over %d messages", tc.name, fs.Messages)
				}
			}
		})
	}
}

// TestRingDoorbellCoalescing verifies doorbell batching end to end: across a
// full chaos-free workload run, wakeups delivered never exceed doorbell
// rings, and rings are a strict subset of sends — the empty->nonempty edge
// is the only time a send pays a wake.
func TestRingDoorbellCoalescing(t *testing.T) {
	s := newChaosStackOn(t, nil, lake.Ring)
	runChaosWorkloads(t, s, chaosRounds()/2, 8)
	tr, ok := s.rt.Transport().(*boundary.RingTransport)
	if !ok {
		t.Fatalf("ring runtime transport is %T", s.rt.Transport())
	}
	sent, received := tr.Stats()
	rings, wakes, _ := tr.DoorbellStats()
	if sent == 0 || received == 0 {
		t.Fatalf("no traffic: sent=%d received=%d", sent, received)
	}
	if rings == 0 {
		t.Fatal("no doorbell rings over a full workload")
	}
	// Frames cross in both directions; each direction rings only on its
	// empty->nonempty transition, so rings <= total frames and wakes <= rings.
	if total := uint64(sent + received); rings > total {
		t.Fatalf("rings %d exceed frames %d: doorbell rung off the empty edge", rings, total)
	}
	if wakes > rings {
		t.Fatalf("wakes %d exceed rings %d", wakes, rings)
	}
	t.Logf("frames=%d rings=%d wakes=%d", sent+received, rings, wakes)
}
