// Flight-recorder acceptance: a fault-ridden chaos run must leave behind a
// dump from which laketrace's stitcher reconstructs essentially every
// completed remoted call as a complete cross-domain timeline, agreeing with
// the span tracer's independent account of the same calls; and disabling
// the recorder must reproduce the untraced wire byte-for-byte (asserted
// here via the modeled per-byte channel costs, and at the frame level by
// internal/remoting's wire-shape tests).
package lake_test

import (
	"encoding/json"
	"testing"
	"time"

	lake "lakego"
	"lakego/internal/kml"
	"lakego/internal/linnos"
	"lakego/internal/mllb"
	"lakego/internal/nn"
)

// newTracedChaosStack is newChaosStack with the observability plane fully
// armed: span tracing on and a flight-recorder ring large enough that the
// run loses no events.
func newTracedChaosStack(t *testing.T, mix *lake.FaultMix) *chaosStack {
	t.Helper()
	cfg := lake.DefaultConfig()
	cfg.Faults = mix
	cfg.TraceCalls = true
	cfg.FlightRecorderSize = 1 << 16
	rt, err := lake.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	dumpOnFailure(t, rt)
	lin, err := linnos.NewPredictor(rt, linnos.Base, nn.New(11, linnos.Base.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	km, err := kml.New(rt, nn.New(12, kml.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	ml, err := mllb.New(rt, nn.New(13, mllb.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	return &chaosStack{rt: rt, lin: lin, km: km, ml: ml}
}

// tracedSpan mirrors the tracer's TimelineJSON shape.
type tracedSpan struct {
	Name    string        `json:"name"`
	Seq     uint64        `json:"seq"`
	TraceID uint64        `json:"trace_id"`
	VStart  time.Duration `json:"v_start_ns"`
	VEnd    time.Duration `json:"v_end_ns"`
	Stages  []struct {
		Stage  string        `json:"stage"`
		VStart time.Duration `json:"v_start_ns"`
		VEnd   time.Duration `json:"v_end_ns"`
	} `json:"stages"`
}

func within1pct(a, b time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return float64(d) <= 0.01*float64(m)
}

// TestFlightRecorderChaosReconstruction runs the chaos sweep's harshest mix
// with the recorder armed and holds the stitcher to the acceptance bar:
// nothing dropped, ≥99% of completed calls rebuilt with the full
// client→daemon→client chain, and timeline totals/boundary stages agreeing
// with the span tracer to within 1%.
func TestFlightRecorderChaosReconstruction(t *testing.T) {
	mix := &lake.FaultMix{
		Drop: 0.05, Corrupt: 0.01, Duplicate: 0.02,
		Delay: 0.1, DelayMin: 20 * time.Microsecond, DelayMax: 60 * time.Microsecond,
		Crash: 0.005, Seed: 107,
	}
	s := newTracedChaosStack(t, mix)
	runChaosWorkloads(t, s, chaosRounds(), 16)

	fs := s.rt.FaultPlane().Stats()
	if fs.Dropped+fs.Corrupted+fs.Duplicated+fs.Delayed+fs.Crashes() == 0 {
		t.Fatalf("mix injected no faults over %d messages; the run proves nothing", fs.Messages)
	}

	rec := s.rt.FlightRecorder()
	if rec == nil {
		t.Fatal("telemetry-enabled runtime has no flight recorder")
	}
	dump := rec.Snapshot("chaos-acceptance")
	if n := dump.TotalDropped(); n != 0 {
		t.Fatalf("recorder dropped %d events with a %d-slot ring", n, 1<<16)
	}

	res := lake.StitchFlightDump(dump)
	if res.Completed == 0 {
		t.Fatal("no completed calls stitched from the dump")
	}
	if float64(res.Complete) < 0.99*float64(res.Completed) {
		incomplete := 0
		for _, tl := range res.Timelines {
			if tl.Completed && !tl.Complete {
				incomplete++
				if incomplete <= 5 {
					t.Logf("incomplete: trace=%d seq=%d missing=%v", tl.TraceID, tl.Seq, tl.Missing)
				}
			}
		}
		t.Fatalf("only %d of %d completed calls fully reconstructed (< 99%%)", res.Complete, res.Completed)
	}

	// Cross-check against the span tracer's independent record of the same
	// calls (the done-ring holds the last 64): per-call totals and the
	// boundary/channel stage must agree within 1%.
	raw, err := s.rt.Telemetry().Tracer().TimelineJSON()
	if err != nil {
		t.Fatal(err)
	}
	var spans []tracedSpan
	if err := json.Unmarshal(raw, &spans); err != nil {
		t.Fatal(err)
	}
	byTID := make(map[uint64]lake.FlightTimeline, len(res.Timelines))
	for _, tl := range res.Timelines {
		byTID[tl.TraceID] = tl
	}
	matched := 0
	for _, sp := range spans {
		tl, ok := byTID[sp.TraceID]
		if !ok || !tl.Complete {
			continue
		}
		matched++
		if spanTotal := sp.VEnd - sp.VStart; !within1pct(tl.Total(), spanTotal) {
			t.Fatalf("trace %d (%s): timeline total %v vs span total %v",
				sp.TraceID, sp.Name, tl.Total(), spanTotal)
		}
		var channel time.Duration
		for _, st := range sp.Stages {
			if st.Stage == "channel" {
				channel += st.VEnd - st.VStart
			}
		}
		if channel > 0 && !within1pct(tl.Boundary, channel) {
			t.Fatalf("trace %d (%s): timeline boundary %v vs span channel %v",
				sp.TraceID, sp.Name, tl.Boundary, channel)
		}
	}
	if matched == 0 {
		t.Fatal("no tracer spans matched stitched timelines")
	}
	t.Logf("stitched %d calls (%d completed, %d complete), %d span cross-checks, %d events",
		len(res.Timelines), res.Completed, res.Complete, matched, dump.TotalEvents())
}

// TestFlightRecorderDisabledMatchesUntraced pins the opt-out: with the
// recorder disabled (tracer off too), no trace IDs are assigned, so the
// wire carries the original untraced frames — the modeled channel costs,
// which are a pure function of bytes crossing the boundary, match a
// telemetry-free runtime exactly.
func TestFlightRecorderDisabledMatchesUntraced(t *testing.T) {
	run := func(cfg lake.Config) lake.Stats {
		rt, err := lake.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		lin, err := linnos.NewPredictor(rt, linnos.Base, nn.New(11, linnos.Base.Sizes()...))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 6; round++ {
			if _, _, _, err := lin.InferAuto(chaosBatchOf(linnos.InputWidth, round, 16), nil); err != nil {
				t.Fatal(err)
			}
		}
		return rt.Stats()
	}

	norec := lake.DefaultConfig()
	norec.DisableFlightRecorder = true
	recOff := run(norec)

	notel := lake.DefaultConfig()
	notel.DisableTelemetry = true
	telOff := run(notel)

	if recOff.ChannelTime != telOff.ChannelTime || recOff.VirtualTime != telOff.VirtualTime ||
		recOff.RemotedCalls != telOff.RemotedCalls {
		t.Fatalf("recorder-disabled run diverged from untraced baseline:\nrecorder off %+v\ntelemetry off %+v",
			recOff, telOff)
	}
}
