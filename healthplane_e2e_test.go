// Health-plane acceptance: a chaos-mix run that breaches the fast-burn
// threshold must leave behind exactly one incident bundle — the anomaly
// latch arms on the rising edge and stays armed while the breach persists —
// and that bundle must be a usable black box: a flight-recorder dump whose
// stitched cross-domain timelines are >=99% complete, a merged telemetry
// snapshot, the model registry's state, and the SLO view that tripped.
package lake_test

import (
	"testing"
	"time"

	lake "lakego"
	"lakego/internal/lifecycle"
	"lakego/internal/linnos"
	"lakego/internal/nn"
)

func TestHealthPlaneIncidentCapture(t *testing.T) {
	mix := &lake.FaultMix{
		Drop: 0.05, Corrupt: 0.01, Duplicate: 0.02,
		Delay: 0.1, DelayMin: 20 * time.Microsecond, DelayMax: 60 * time.Microsecond,
		Crash: 0.005, Seed: 211,
	}
	s := newTracedChaosStack(t, mix)

	// A lifecycle manager on the runtime so the bundle carries registry
	// state alongside the dump and the metrics snapshot.
	if _, err := s.rt.NewLifecycle(lifecycle.DefaultConfig("linnos-base"), nn.New(21, linnos.Base.Sizes()...)); err != nil {
		t.Fatal(err)
	}

	// A 1µs call budget no real call can meet: the very first poll after
	// traffic must see attainment far below target and trip fast-burn.
	plane := s.rt.NewHealthPlane(lake.HealthPlaneConfig{
		Tick:       time.Millisecond,
		ShortTicks: 5,
		LongTicks:  1000,
		Objectives: []lake.SLOObjective{{Name: "calls", Stage: "call", Budget: time.Microsecond, Target: 0.999}},
	})

	runChaosWorkloads(t, s, chaosRounds(), 16)

	incidents := plane.Poll()
	if len(incidents) != 1 {
		t.Fatalf("breach produced %d incidents, want exactly 1 (rising-edge latch)", len(incidents))
	}
	inc := incidents[0]
	if inc.Trigger != "fast-burn" || inc.Objective != "calls" {
		t.Fatalf("incident = %s/%s, want fast-burn/calls (detail: %s)", inc.Trigger, inc.Objective, inc.Detail)
	}

	// The black box must reconstruct: stitch the captured dump and hold it
	// to the same >=99%-complete bar as the direct-snapshot acceptance.
	if inc.Dump == nil {
		t.Fatal("incident bundle has no flight-recorder dump")
	}
	res := lake.StitchFlightDump(inc.Dump)
	if res.Completed == 0 {
		t.Fatal("no completed calls stitched from the incident dump")
	}
	if float64(res.Complete) < 0.99*float64(res.Completed) {
		t.Fatalf("only %d of %d completed calls fully reconstructed from the incident dump (< 99%%)",
			res.Complete, res.Completed)
	}

	if len(inc.Telemetry.Counters) == 0 || len(inc.Telemetry.Histograms) == 0 {
		t.Fatalf("incident telemetry snapshot empty: %d counters, %d histograms",
			len(inc.Telemetry.Counters), len(inc.Telemetry.Histograms))
	}
	if len(inc.Models) != 1 || inc.Models[0].Model != "linnos-base" || len(inc.Models[0].Versions) == 0 {
		t.Fatalf("incident registry state = %+v, want the linnos-base manager with its versions", inc.Models)
	}
	if inc.SLO == nil || len(inc.SLO.Objectives) == 0 {
		t.Fatal("incident bundle has no SLO state")
	}

	// The breach persists — more bad traffic must NOT re-trip the latch.
	runChaosWorkloads(t, s, 4, 8)
	if extra := plane.Poll(); len(extra) != 0 {
		t.Fatalf("latched breach re-captured %d incidents; want 0 until the burn clears", len(extra))
	}
	if got := len(plane.Incidents()); got != 1 {
		t.Fatalf("incident ring holds %d bundles, want 1", got)
	}
}
