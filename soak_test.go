// Soak test: the full runtime under concurrent mixed load — remoted CUDA
// calls, feature capture from many goroutines, policy decisions, high-level
// API invocations — must stay consistent and leak nothing.
package lake_test

import (
	"sync"
	"testing"

	lake "lakego"
	"lakego/internal/cuda"
	"lakego/internal/shm"
)

func TestSoakConcurrentMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rt, err := lake.New(lake.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterKernel(lake.VecAddKernel())
	rt.Daemon().RegisterHighLevel("sum", func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
		var s uint64
		for _, a := range args {
			s += a
		}
		return []uint64{s}, nil, cuda.Success
	})

	reg, err := rt.Features().CreateRegistry("soak", "sys", lake.FeatureSchema{
		{Key: "pend", Size: 8, Entries: 1},
		{Key: "lat", Size: 8, Entries: 4},
	}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pol := rt.NewAdaptivePolicy(lake.DefaultAdaptiveConfig())

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lib := rt.Lib()
			ctx, r := lib.CuCtxCreate("soak")
			if r != lake.Success {
				errs <- "ctx: " + r.String()
				return
			}
			mod, _ := lib.CuModuleLoad("m")
			fn, r := lib.CuModuleGetFunction(mod, "vecadd")
			if r != lake.Success {
				errs <- "fn: " + r.String()
				return
			}
			buf, err := rt.Region().Alloc(4 * 16)
			if err != nil {
				errs <- err.Error()
				return
			}
			dp, _ := lib.CuMemAlloc(4 * 16)
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0: // remoted compute round
					if r := lib.CuMemcpyHtoDShm(dp, buf, 4*16); r != lake.Success {
						errs <- "htod: " + r.String()
						return
					}
					if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(dp), uint64(dp), uint64(dp), 16}); r != lake.Success {
						errs <- "launch: " + r.String()
						return
					}
				case 1: // feature capture
					reg.CaptureFeatureIncr("pend", 1)
					reg.BeginCapture(rt.Clock().Now())
					reg.CommitCapture(rt.Clock().Now())
					reg.CaptureFeatureIncr("pend", -1)
				case 2: // policy decision
					pol.Decide(i % 64)
				case 3: // high-level API
					vals, _, r := lib.CallHighLevel("sum", []uint64{uint64(w), uint64(i)}, nil)
					if r != lake.Success || vals[0] != uint64(w+i) {
						errs <- "sum wrong"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	st := rt.Stats()
	wantLaunches := int64(workers * iters / 4)
	if st.KernelLaunches != wantLaunches {
		t.Fatalf("launches = %d, want %d", st.KernelLaunches, wantLaunches)
	}
	if st.RemotedCalls != st.DaemonHandled {
		t.Fatalf("calls %d != handled %d", st.RemotedCalls, st.DaemonHandled)
	}
	if got := reg.Commits(); got != int64(workers*iters/4) {
		t.Fatalf("commits = %d, want %d", got, workers*iters/4)
	}
}
