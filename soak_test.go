// Soak test: the full runtime under concurrent mixed load — remoted CUDA
// calls, feature capture from many goroutines, policy decisions, high-level
// API invocations — must stay consistent and leak nothing.
package lake_test

import (
	"sync"
	"testing"
	"time"

	lake "lakego"
	"lakego/internal/cuda"
	"lakego/internal/shm"
)

func TestSoakConcurrentMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rt, err := lake.New(lake.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterKernel(lake.VecAddKernel())
	rt.Daemon().RegisterHighLevel("sum", func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
		var s uint64
		for _, a := range args {
			s += a
		}
		return []uint64{s}, nil, cuda.Success
	})

	reg, err := rt.Features().CreateRegistry("soak", "sys", lake.FeatureSchema{
		{Key: "pend", Size: 8, Entries: 1},
		{Key: "lat", Size: 8, Entries: 4},
	}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pol := rt.NewAdaptivePolicy(lake.DefaultAdaptiveConfig())

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lib := rt.Lib()
			ctx, r := lib.CuCtxCreate("soak")
			if r != lake.Success {
				errs <- "ctx: " + r.String()
				return
			}
			mod, _ := lib.CuModuleLoad("m")
			fn, r := lib.CuModuleGetFunction(mod, "vecadd")
			if r != lake.Success {
				errs <- "fn: " + r.String()
				return
			}
			buf, err := rt.Region().Alloc(4 * 16)
			if err != nil {
				errs <- err.Error()
				return
			}
			dp, _ := lib.CuMemAlloc(4 * 16)
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0: // remoted compute round
					if r := lib.CuMemcpyHtoDShm(dp, buf, 4*16); r != lake.Success {
						errs <- "htod: " + r.String()
						return
					}
					if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(dp), uint64(dp), uint64(dp), 16}); r != lake.Success {
						errs <- "launch: " + r.String()
						return
					}
				case 1: // feature capture
					reg.CaptureFeatureIncr("pend", 1)
					reg.BeginCapture(rt.Clock().Now())
					reg.CommitCapture(rt.Clock().Now())
					reg.CaptureFeatureIncr("pend", -1)
				case 2: // policy decision
					pol.Decide(i % 64)
				case 3: // high-level API
					vals, _, r := lib.CallHighLevel("sum", []uint64{uint64(w), uint64(i)}, nil)
					if r != lake.Success || vals[0] != uint64(w+i) {
						errs <- "sum wrong"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	st := rt.Stats()
	wantLaunches := int64(workers * iters / 4)
	if st.KernelLaunches != wantLaunches {
		t.Fatalf("launches = %d, want %d", st.KernelLaunches, wantLaunches)
	}
	if st.RemotedCalls != st.DaemonHandled {
		t.Fatalf("calls %d != handled %d", st.RemotedCalls, st.DaemonHandled)
	}
	if got := reg.Commits(); got != int64(workers*iters/4) {
		t.Fatalf("commits = %d, want %d", got, workers*iters/4)
	}
}

// TestSoakUnderFaults is the fault-enabled soak: the same concurrent mixed
// load as above, but with 1% of channel messages dropped and the daemon
// periodically crashed and supervisor-restarted underneath it. The load
// must complete with nothing lost and nothing double-executed — the
// kernel-launch and feature-commit counters are exact, so a lost or
// re-executed command shows up as an off-by-N.
func TestSoakUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := lake.DefaultConfig()
	cfg.Faults = &lake.FaultMix{Drop: 0.01, Seed: 31}
	cfg.Supervision = lake.SupervisorConfig{MaxRestarts: 1 << 20}
	rt, err := lake.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterKernel(lake.VecAddKernel())
	rt.Daemon().RegisterHighLevel("sum", func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
		var s uint64
		for _, a := range args {
			s += a
		}
		return []uint64{s}, nil, cuda.Success
	})

	reg, err := rt.Features().CreateRegistry("soak-faulty", "sys", lake.FeatureSchema{
		{Key: "pend", Size: 8, Entries: 1},
	}, 4096)
	if err != nil {
		t.Fatal(err)
	}

	// One crash is armed before any worker runs, so at least one restart
	// happens regardless of how the scheduler interleaves the crash driver
	// with the (much faster) workers.
	rt.Daemon().InjectCrash(true)

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lib := rt.Lib()
			ctx, r := lib.CuCtxCreate("soak-faulty")
			if r != lake.Success {
				errs <- "ctx: " + r.String()
				return
			}
			mod, _ := lib.CuModuleLoad("m")
			fn, r := lib.CuModuleGetFunction(mod, "vecadd")
			if r != lake.Success {
				errs <- "fn: " + r.String()
				return
			}
			buf, err := rt.Region().Alloc(4 * 16)
			if err != nil {
				errs <- err.Error()
				return
			}
			dp, _ := lib.CuMemAlloc(4 * 16)
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0: // remoted compute round
					if r := lib.CuMemcpyHtoDShm(dp, buf, 4*16); r != lake.Success {
						errs <- "htod: " + r.String()
						return
					}
					if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(dp), uint64(dp), uint64(dp), 16}); r != lake.Success {
						errs <- "launch: " + r.String()
						return
					}
				case 1: // feature capture
					reg.CaptureFeatureIncr("pend", 1)
					reg.BeginCapture(rt.Clock().Now())
					reg.CommitCapture(rt.Clock().Now())
					reg.CaptureFeatureIncr("pend", -1)
				case 2: // redundant remoted query
					if _, r := lib.CuDeviceGetCount(); r != lake.Success {
						errs <- "devcount: " + r.String()
						return
					}
				case 3: // high-level API
					vals, _, r := lib.CallHighLevel("sum", []uint64{uint64(w), uint64(i)}, nil)
					if r != lake.Success || vals[0] != uint64(w+i) {
						errs <- "sum wrong"
						return
					}
				}
			}
		}(w)
	}

	// Crash driver: periodically kill the daemon (alternating crash
	// placement) and let the supervisor heartbeat race the in-call
	// recovery path.
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		daemon, sup := rt.Daemon(), rt.Supervisor()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			daemon.InjectCrash(i%2 == 0)
			sup.Check()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stop)
	driver.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	st := rt.Stats()
	wantLaunches := int64(workers * iters / 4)
	if st.KernelLaunches != wantLaunches {
		t.Fatalf("launches = %d, want %d (lost or re-executed launches)", st.KernelLaunches, wantLaunches)
	}
	if got := reg.Commits(); got != int64(workers*iters/4) {
		t.Fatalf("commits = %d, want %d", got, workers*iters/4)
	}
	rs := rt.Lib().ResilienceStats()
	if rs.DaemonDead != 0 || rs.DeadlineExceeded != 0 {
		t.Fatalf("abandoned calls during faulty soak: %+v", rs)
	}
	if fs := rt.FaultPlane().Stats(); fs.Dropped == 0 {
		t.Fatalf("1%% drop mix never fired over %d messages", fs.Messages)
	}
	if rt.Daemon().Restarts() == 0 {
		t.Fatal("crash driver produced no restarts")
	}
	t.Logf("faulty soak: %d retries, %d redeliveries, %d restarts, handled=%d executed=%d",
		rs.Retries, rt.Daemon().Redelivered(), rt.Daemon().Restarts(),
		st.DaemonHandled, st.DaemonExecuted)
}
