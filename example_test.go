package lake_test

import (
	"fmt"
	"log"

	lake "lakego"
	"lakego/internal/cuda"
)

// Example demonstrates the full §4.1 workflow: boot the runtime, stage data
// in lakeShm, remote CUDA driver calls through lakeLib, and read the result
// back zero-copy.
func Example() {
	rt, err := lake.New(lake.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterKernel(lake.VecAddKernel())

	lib := rt.Lib()
	ctx, _ := lib.CuCtxCreate("example")
	mod, _ := lib.CuModuleLoad("kernels.cubin")
	fn, _ := lib.CuModuleGetFunction(mod, "vecadd")

	const n = 4
	a, _ := rt.Region().Alloc(4 * n)
	c, _ := rt.Region().Alloc(4 * n)
	cuda.PutFloat32s(a.Bytes(), []float32{1, 2, 3, 4})

	da, _ := lib.CuMemAlloc(4 * n)
	dc, _ := lib.CuMemAlloc(4 * n)
	lib.CuMemcpyHtoDShm(da, a, 4*n)
	lib.CuLaunchKernel(ctx, fn, []uint64{uint64(da), uint64(da), uint64(dc), n})
	lib.CuMemcpyDtoHShm(c, dc, 4*n)

	out, _ := cuda.Float32s(c.Bytes(), n)
	fmt.Println(out)
	// Output: [2 4 6 8]
}

// Example_policy shows the Fig 3 adaptive policy deciding between CPU and
// GPU based on batch size and (remoted NVML) device utilization.
func Example_policy() {
	rt, err := lake.New(lake.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	pol := rt.NewAdaptivePolicy(lake.AdaptiveConfig{
		UtilThreshold: 40, BatchThreshold: 8, Window: 1,
	})
	fmt.Println("batch 2:", pol.Decide(2))
	fmt.Println("batch 64:", pol.Decide(64))
	// Output:
	// batch 2: CPU
	// batch 64: GPU
}

// Example_featureRegistry exercises the §5 Table 1 API: asynchronous
// capture with running counters and history fields, batch retrieval and
// truncation.
func Example_featureRegistry() {
	rt, err := lake.New(lake.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	reg, err := rt.Features().CreateRegistry("sda1", "bio_latency_prediction",
		lake.FeatureSchema{
			{Key: "pend_ios", Size: 8, Entries: 1},
			{Key: "io_latency", Size: 8, Entries: 4},
		}, 128)
	if err != nil {
		log.Fatal(err)
	}

	// I/O issue path (Listing 4): bump the pending counter, commit.
	reg.BeginCapture(0)
	reg.CaptureFeatureIncr("pend_ios", 1)
	reg.CommitCapture(1)
	// Completion path (Listing 5): one less pending.
	reg.CaptureFeatureIncr("pend_ios", -1)
	reg.BeginCapture(1)
	reg.CommitCapture(2)

	batch := reg.GetFeatures(lake.NullTS)
	fmt.Println("vectors:", len(batch))
	reg.Truncate(lake.NullTS)
	fmt.Println("after truncate:", reg.Len(), "(most recent kept for history)")
	// Output:
	// vectors: 2
	// after truncate: 1 (most recent kept for history)
}
