// BenchmarkPoolScaling quantifies the multi-GPU device pool
// (internal/gpupool) under contention: a tenant pins device 0 at 100%
// utilization while 64 concurrent LinnOS clients stream batched inference
// through the Fig 3 adaptive policy. On a single device the aggregate NVML
// query reads 100% and every flush falls back to the CPU; on a 4-device
// pool the aggregate drops to 25%, the policy keeps the GPU path, and
// contention-aware per-flush placement steers every launch onto the idle
// devices — the throughput ratio is the pool's headline speedup.
package lake_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	lake "lakego"
	"lakego/internal/batcher"
	"lakego/internal/core"
	"lakego/internal/gpupool"
	"lakego/internal/kml"
	"lakego/internal/linnos"
	"lakego/internal/mllb"
	"lakego/internal/nn"
	"lakego/internal/policy"
)

// poolBenchConfig boots a contention-aware pool of n devices with a fixed
// placement seed so runs are reproducible.
func poolBenchConfig(devices int) core.Config {
	cfg := benchConfig(false)
	cfg.NumDevices = devices
	cfg.PoolPolicy = gpupool.ContentionAware
	cfg.PoolSeed = 42
	return cfg
}

// runPoolScalingLinnOS drives the batched LinnOS workload of
// batching_bench_test.go on a device pool whose device 0 is held at 100%
// utilization by a tenant for the whole run, with the Fig 3 adaptive policy
// deciding CPU vs GPU per flush. Unlike runBatchedLinnOSCfg it does not
// assert the MaxWait flush bound: CPU-fallback flushes occupy the caller
// long enough that later submissions legitimately queue past the deadline.
func runPoolScalingLinnOS(tb testing.TB, clients, perClient, devices int) batchBenchRun {
	tb.Helper()
	rt, err := core.New(poolBenchConfig(devices))
	if err != nil {
		tb.Fatal(err)
	}
	defer rt.Close()
	// The tenant workload: device 0 is fully occupied for longer than the
	// benchmark's virtual duration, so its NVML utilization reads 100 at
	// every sampling window the run touches.
	rt.Pool().Device(0).OccupySpan("tenant", 0, 10*time.Second)

	pred, err := linnos.NewPredictor(rt, linnos.Base, nn.New(3, linnos.Base.Sizes()...))
	if err != nil {
		tb.Fatal(err)
	}
	cfg := batcher.DefaultConfig()
	cfg.MaxBatch = clients
	cfg.MaxWait = 200 * time.Microsecond
	// Linger is real time: wide enough that batches coalesce fully even
	// when the race detector slows submitters (virtual MaxWait still bounds
	// modeled queueing, and full batches wake the leader immediately).
	cfg.Linger = 2 * time.Millisecond
	cfg.ClientDepth = 4
	cfg.Policy = rt.NewAdaptivePolicy(policy.DefaultAdaptiveConfig()).Decide
	b := rt.NewBatcher(cfg)
	if err := pred.EnableBatching(b); err != nil {
		tb.Fatal(err)
	}
	run := batchBenchRun{
		lats:  make([]time.Duration, clients*perClient),
		preds: make([]bool, clients*perClient),
	}
	start := rt.Clock().Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := b.Client(fmt.Sprintf("queue-%d", ci))
			for r := 0; r < perClient; r++ {
				p, err := pred.SubmitBatched(c, [][]float32{linnosFeature(ci, r)})
				if err != nil {
					errCh <- err
					return
				}
				slow, err := linnos.WaitSlow(p)
				if err != nil {
					errCh <- err
					return
				}
				run.lats[ci*perClient+r] = p.Latency()
				run.preds[ci*perClient+r] = slow[0]
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		tb.Fatal(err)
	}
	run.elapsed = rt.Clock().Now() - start
	return run
}

func BenchmarkPoolScaling(b *testing.B) {
	const clients = 64
	var single, pooled batchBenchRun
	for i := 0; i < b.N; i++ {
		single = runPoolScalingLinnOS(b, clients, batchBenchPerClient, 1)
		pooled = runPoolScalingLinnOS(b, clients, batchBenchPerClient, 4)
	}
	for i := range pooled.preds {
		if pooled.preds[i] != single.preds[i] {
			b.Fatalf("request %d: pooled prediction differs from single-device", i)
		}
	}
	b.ReportMetric(single.throughput(), "single_dev_req_per_s")
	b.ReportMetric(pooled.throughput(), "pool4_req_per_s")
	b.ReportMetric(pooled.throughput()/single.throughput(), "pool_speedup")
	b.ReportMetric(float64(pooled.p99().Microseconds()), "pool4_p99_us")
	b.ReportMetric(float64(single.p99().Microseconds()), "single_dev_p99_us")
}

// TestPoolScalingSpeedup pins the tentpole acceptance number: with device 0
// contended, a 4-device contention-aware pool must deliver at least 3x the
// aggregate throughput of the single-device configuration at 64 concurrent
// batched LinnOS clients, with bit-identical predictions.
func TestPoolScalingSpeedup(t *testing.T) {
	const clients = 64
	single := runPoolScalingLinnOS(t, clients, batchBenchPerClient, 1)
	pooled := runPoolScalingLinnOS(t, clients, batchBenchPerClient, 4)
	for i := range pooled.preds {
		if pooled.preds[i] != single.preds[i] {
			t.Fatalf("request %d: pooled prediction differs from single-device", i)
		}
	}
	speedup := pooled.throughput() / single.throughput()
	t.Logf("single-device %.0f req/s, 4-device pool %.0f req/s, speedup %.2fx, p99 %v vs %v",
		single.throughput(), pooled.throughput(), speedup, single.p99(), pooled.p99())
	if speedup < 3 {
		t.Fatalf("pool speedup %.2fx < 3x acceptance threshold", speedup)
	}
}

// newPoolChaosStack is newChaosStack on a 4-device contention-aware pool:
// same workloads and predictor seeds, but every context placement and
// per-flush launch routes through the seeded pool.
func newPoolChaosStack(t *testing.T, mix *lake.FaultMix) *chaosStack {
	t.Helper()
	cfg := lake.DefaultConfig()
	cfg.NumDevices = 4
	cfg.PoolPolicy = lake.PoolContentionAware
	cfg.PoolSeed = 7
	cfg.Faults = mix
	rt, err := lake.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	lin, err := linnos.NewPredictor(rt, linnos.Base, nn.New(11, linnos.Base.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	km, err := kml.New(rt, nn.New(12, kml.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	ml, err := mllb.New(rt, nn.New(13, mllb.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	return &chaosStack{rt: rt, lin: lin, km: km, ml: ml}
}

// TestPoolChaosDeterministic pins the multi-device determinism contract:
// two runs of the full chaos workload suite on identically configured
// 4-device pools — same fault mix seed, same pool seed — are bit-identical
// in predictions, per-call virtual latencies, and runtime counters, because
// placement draws only from the pool's seeded PRNG and the virtual clock.
func TestPoolChaosDeterministic(t *testing.T) {
	rounds, batch := chaosRounds(), 8
	mix := func() *lake.FaultMix {
		return &lake.FaultMix{
			Drop: 0.05, Corrupt: 0.01, Duplicate: 0.02,
			Delay: 0.1, DelayMin: 20 * time.Microsecond, DelayMax: 60 * time.Microsecond,
			Crash: 0.005, Seed: 107,
		}
	}

	first := newPoolChaosStack(t, mix())
	firstDigest, firstLats := runChaosWorkloads(t, first, rounds, batch)
	firstStats := first.rt.Stats()

	second := newPoolChaosStack(t, mix())
	secondDigest, secondLats := runChaosWorkloads(t, second, rounds, batch)
	secondStats := second.rt.Stats()

	if len(firstDigest) != len(secondDigest) {
		t.Fatalf("digest lengths differ: %d vs %d", len(firstDigest), len(secondDigest))
	}
	for i := range firstDigest {
		if firstDigest[i] != secondDigest[i] {
			t.Fatalf("prediction %d differs across identical runs: %d vs %d", i, firstDigest[i], secondDigest[i])
		}
	}
	for i := range firstLats {
		if firstLats[i] != secondLats[i] {
			t.Fatalf("call %d latency differs across identical runs: %v vs %v", i, firstLats[i], secondLats[i])
		}
	}
	if firstStats != secondStats {
		t.Fatalf("runtime stats diverged across identical runs:\nfirst  %+v\nsecond %+v", firstStats, secondStats)
	}
	// Per-device accounting must agree too: identical placement decisions
	// land identical launch/copy counts on every ordinal.
	fa, sa := first.rt.Pool().Accounting(), second.rt.Pool().Accounting()
	for i := range fa {
		if fa[i] != sa[i] {
			t.Fatalf("device %d accounting diverged: %+v vs %+v", i, fa[i], sa[i])
		}
	}
	t.Logf("deterministic over %d predictions, %d calls: stats %+v", len(firstDigest), len(firstLats), firstStats)
}
