// fleet demonstrates the sharded multi-daemon deployment: several
// independent lakeD shards — each a full runtime with its own supervisor,
// batcher, device pool and virtual clock — behind the client-side router.
// Tenants are placed on shards by a pluggable policy, admission control
// enforces per-tenant and fair-share quotas, and a live drain hands a
// shard's exactly-once journal to a successor mid-storm without losing or
// re-executing a single call.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	lake "lakego"
	"lakego/internal/linnos"
	"lakego/internal/nn"
)

const (
	shards    = 4
	tenants   = 12
	perTenant = 40
)

func feature(ti, r int) []float32 {
	return linnos.FeatureVector((ti*13+r*5)%89, []time.Duration{
		time.Duration((ti+r)%9) * 250 * time.Microsecond,
	})
}

func main() {
	cfg := lake.DefaultConfig()
	cfg.NumShards = shards
	cfg.RouterPolicy = lake.PoolRoundRobin // or consistent-hash, least-outstanding, contention-aware
	cfg.RouterSeed = 42
	f, err := lake.NewFleet(lake.FleetConfig{Runtime: cfg, Batcher: lake.DefaultBatcherConfig()})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// One model, registered on every shard: the LinnOS latency classifier.
	net := nn.New(3, linnos.Base.Sizes()...)
	if err := f.RegisterModel(lake.BatcherModel{
		Name:       "linnos",
		InputWidth: linnos.InputWidth, OutputWidth: 2,
		MaxBatch:     linnos.MaxBatch,
		CPUPerItem:   linnos.Base.CPUInferCost(),
		FlopsPerItem: net.Flops(),
		Forward:      net.Forward,
	}); err != nil {
		log.Fatal(err)
	}

	// A weighted tenant with a tight outstanding-request cap: the router's
	// admission control backpressures it independently of everyone else.
	f.Tenant("tenant-0", lake.FleetTenantConfig{Weight: 2, MaxOutstanding: 8})

	var wg sync.WaitGroup
	drained := make(chan *lake.FleetMigration, 1)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			c := f.Client(fmt.Sprintf("tenant-%d", ti))
			for r := 0; r < perTenant; r++ {
				if _, err := c.Infer("linnos", [][]float32{feature(ti, r)}); err != nil {
					log.Fatalf("tenant %d: %v", ti, err)
				}
			}
		}(ti)
	}

	// Mid-storm maintenance: drain shard 0. The router stops placing new
	// tenants there, in-flight calls quiesce, the exactly-once journal
	// crosses to the successor in a CRC-sealed handoff frame, and the
	// drained shard's tenants re-route — zero lost, zero re-executed.
	go func() {
		time.Sleep(2 * time.Millisecond)
		m, err := f.Drain(0)
		if err != nil {
			log.Fatal(err)
		}
		drained <- m
	}()
	wg.Wait()
	m := <-drained

	fmt.Printf("fleet of %d shards served %d tenants (%s routing)\n",
		shards, tenants, f.Policy())
	st := f.Stats()
	fmt.Printf("router: %d placements, %d reroutes, %d migrations, %d admission rejects\n",
		st.Placements, st.Reroutes, st.Migrations, st.Rejects)
	fmt.Printf("drain:  shard %d -> %d, %d journal entries in a %dB sealed frame, %d tenants re-homed\n",
		m.Src, m.Dst, m.JournalEntries, m.HandoffBytes, m.Tenants)
	for _, sh := range f.Shards() {
		bs := sh.Batcher().Stats()
		fmt.Printf("shard %d [%s]: %d requests, %d flushes (avg batch %.1f), redelivered %d, v=%v\n",
			sh.Ordinal(), sh.State(), bs.Requests, bs.Flushes, bs.AvgBatch(),
			sh.Runtime().Daemon().Redelivered(), sh.Clock().Now())
	}
	fmt.Printf("fleet virtual elapsed (critical path over per-shard clocks): %v\n",
		f.VirtualElapsed())
}
