// multigpu demonstrates the device pool (internal/gpupool): a 4-GPU runtime
// with contention-aware placement, a tenant workload pinning device 0, and
// 32 batched LinnOS clients whose flushes are steered onto the idle devices.
// The same workload on a single contended device falls back to the CPU per
// the Fig 3 policy; the printed per-device accounting and the throughput
// ratio show what the pool buys.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	lake "lakego"
	"lakego/internal/linnos"
	"lakego/internal/nn"
)

const (
	clients   = 32
	perClient = 32
)

// run drives the batched LinnOS workload on a pool of n devices whose
// device 0 is occupied by a tenant, returning requests per virtual second.
func run(devices int) (float64, *lake.Runtime, error) {
	cfg := lake.DefaultConfig()
	cfg.NumDevices = devices
	cfg.PoolPolicy = lake.PoolContentionAware
	cfg.PoolSeed = 42
	rt, err := lake.New(cfg)
	if err != nil {
		return 0, nil, err
	}
	rt.Pool().Device(0).OccupySpan("tenant", 0, 10*time.Second)

	pred, err := linnos.NewPredictor(rt, linnos.Base, nn.New(3, linnos.Base.Sizes()...))
	if err != nil {
		return 0, nil, err
	}
	bcfg := lake.DefaultBatcherConfig()
	bcfg.MaxBatch = clients
	bcfg.MaxWait = 200 * time.Microsecond
	// Real-time linger wide enough for full coalescing regardless of
	// scheduler jitter, so the printed virtual metrics are reproducible.
	bcfg.Linger = 2 * time.Millisecond
	bcfg.Policy = rt.NewAdaptivePolicy(lake.DefaultAdaptiveConfig()).Decide
	b := rt.NewBatcher(bcfg)
	if err := pred.EnableBatching(b); err != nil {
		return 0, nil, err
	}

	start := rt.Clock().Now()
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := b.Client(fmt.Sprintf("queue-%d", ci))
			for r := 0; r < perClient; r++ {
				x := linnos.FeatureVector((ci*31+r*7)%97, []time.Duration{
					time.Duration((ci+r)%11) * 200 * time.Microsecond,
				})
				p, err := pred.SubmitBatched(c, [][]float32{x})
				if err != nil {
					log.Fatal(err)
				}
				if _, err := linnos.WaitSlow(p); err != nil {
					log.Fatal(err)
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := rt.Clock().Now() - start
	return float64(clients*perClient) / elapsed.Seconds(), rt, nil
}

func main() {
	fmt.Println("=== multi-GPU device pool under tenant contention ===")
	fmt.Printf("%d batched LinnOS clients, device 0 held at 100%% by a tenant\n\n", clients)

	single, rt1, err := run(1)
	if err != nil {
		log.Fatal(err)
	}
	defer rt1.Close()
	fmt.Printf("1 device : %10.0f req/s (aggregate NVML util 100%% -> CPU fallback)\n", single)

	pooled, rt4, err := run(4)
	if err != nil {
		log.Fatal(err)
	}
	defer rt4.Close()
	fmt.Printf("4 devices: %10.0f req/s (aggregate util 25%% -> GPU, flushes steered to idle devices)\n\n", pooled)

	fmt.Println("per-device accounting (4-device pool):")
	for _, acc := range rt4.Pool().Accounting() {
		tag := ""
		if acc.Ordinal == 0 {
			tag = "  <- tenant-contended, avoided by placement"
		}
		fmt.Printf("  gpu%d: %4d launches, %4d copies, %8d bytes%s\n",
			acc.Ordinal, acc.Launches, acc.Copies, acc.CopyBytes, tag)
	}
	fmt.Printf("\npool speedup: %.1fx\n", pooled/single)
}
