// loadbalance runs the §7.3 workload end to end: train MLLB's perceptron on
// the scheduler simulator's labeled migration opportunities, plug it in as
// the kernel's load balancer through LAKE, and compare a skewed workload's
// completion against the CFS-style heuristic — then show the Fig 10 batch
// profitability sweep.
package main

import (
	"fmt"
	"log"
	"time"

	"lakego/internal/core"
	"lakego/internal/mllb"
	"lakego/internal/offload"
	"lakego/internal/sched"
)

// runSkewed runs a deliberately imbalanced workload under the given
// balancer and returns the stats.
func runSkewed(b sched.Balancer, seed int64) sched.Stats {
	cfg := sched.DefaultConfig()
	cfg.Seed = seed
	sim, err := sched.NewSim(cfg, b)
	if err != nil {
		log.Fatal(err)
	}
	sim.SpawnRandom(256, 2*time.Millisecond, 30*time.Millisecond)
	return sim.Run(time.Minute)
}

func main() {
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	fmt.Println("training MLLB on simulator-labeled migration decisions...")
	net, acc, err := mllb.TrainFromSim(7, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  training accuracy %.1f%%\n\n", acc*100)

	bal, err := mllb.New(rt, net)
	if err != nil {
		log.Fatal(err)
	}

	heuristic := runSkewed(sched.Heuristic{}, 21)
	learned := runSkewed(bal, 21)
	fmt.Println("skewed 256-task workload, 16 cores, 2 NUMA nodes:")
	fmt.Printf("  %-18s makespan %8v  avg turnaround %8v  migrations %d\n",
		"CFS heuristic", heuristic.Makespan, heuristic.AvgTurnTime, heuristic.Migrations)
	fmt.Printf("  %-18s makespan %8v  avg turnaround %8v  migrations %d\n",
		"MLLB (learned)", learned.Makespan, learned.AvgTurnTime, learned.Migrations)

	fmt.Println("\nFig 10 profitability sweep (classification time per batch):")
	pts, err := mllb.Sweep(bal, []int{1, 64, 256, 1024})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  batch %4d: CPU %8v   LAKE %8v   LAKE sync %8v\n",
			p.Batch, p.CPU, p.LAKE, p.LAKESync)
	}
	fmt.Printf("crossover: GPU profitable beyond %d tasks (Table 3: 256)\n",
		offload.Crossover(pts))
}
