// contention replays the paper's two contention timelines: Fig 1's
// unmanaged collapse of a GPU-accelerated user application when kernel ML
// workloads arrive, and Fig 13's recovery under the Fig 3 adaptive policy,
// which samples remoted NVML utilization and falls back to the CPU.
package main

import (
	"fmt"
	"log"
	"strings"

	"lakego/internal/contention"
	"lakego/internal/core"
)

func bar(norm float64, width int) string {
	n := int(norm * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

func main() {
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	fmt.Println("=== Fig 1: unmanaged contention ===")
	fmt.Println("user hashing throughput (pages/s), kernel classifiers start at 4s and 7s:")
	pts := contention.Fig1(rt)
	for i, p := range pts {
		if i%4 != 0 {
			continue
		}
		fmt.Printf("%5.1fs %s %6.2fe7\n", p.T.Seconds(), bar(p.PagesPerSec/2e7, 40), p.PagesPerSec/1e7)
	}
	fmt.Printf("worst-case degradation: %.0f%% (paper: up to 68%%)\n\n",
		contention.Fig1Degradation(pts)*100)

	rt2, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt2.Close()

	fmt.Println("=== Fig 13: adaptive contention policy ===")
	fmt.Println("H = user hashing, P = kernel I/O latency predictor (normalized):")
	pts13 := contention.Fig13(rt2)
	for i, p := range pts13 {
		if i%4 != 0 {
			continue
		}
		target := "cpu"
		if p.OnGPU {
			target = "GPU"
		}
		fmt.Printf("%5.1fs  H %s  P %s %s\n",
			p.T.Seconds(), bar(p.HashingNorm, 20), bar(p.PredictorNorm, 20), target)
	}
	s := contention.Summarize(pts13)
	fmt.Printf("\npolicy fell back to CPU for %.0f%% of the contended window and reclaimed\n"+
		"the GPU %.1fs after the user process exited; user throughput stayed stable: %v\n",
		s.CPUFraction*100, s.ReclaimedBy.Seconds(), s.HashingStable)
}
