// batching demonstrates the cross-client inference batching subsystem:
// many kernel-side clients (here, per-queue LinnOS latency classifiers)
// each produce a trickle of single-I/O requests — individually far below
// the Fig 8 batching crossover — and lakeD's batcher coalesces them into
// dynamically formed GPU launches under a max-wait flush deadline.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/core"
	"lakego/internal/linnos"
	"lakego/internal/nn"
)

const (
	clients   = 24
	perClient = 50
	maxWait   = 200 * time.Microsecond
)

func feature(ci, r int) []float32 {
	return linnos.FeatureVector((ci*13+r*5)%89, []time.Duration{
		time.Duration((ci+r)%9) * 250 * time.Microsecond,
	})
}

func main() {
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	pred, err := linnos.NewPredictor(rt, linnos.Base, nn.New(3, linnos.Base.Sizes()...))
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: each client remotes its own single-I/O batches.
	fmt.Printf("%d clients x %d single-I/O classifications each\n\n", clients, perClient)
	t0 := rt.Clock().Now()
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				if _, _, err := pred.InferLAKE([][]float32{feature(ci, r)}, true); err != nil {
					log.Fatal(err)
				}
			}
		}(ci)
	}
	wg.Wait()
	unbatched := rt.Clock().Now() - t0
	fmt.Printf("unbatched remoting: %v virtual time (%.0f req/s)\n",
		unbatched, float64(clients*perClient)/unbatched.Seconds())

	// Batched: the same load through one shared Batcher. The adaptive
	// policy routes each flush GPU vs CPU exactly as Fig 3 prescribes.
	cfg := batcher.DefaultConfig()
	cfg.MaxWait = maxWait
	b := rt.NewBatcher(cfg)
	if err := pred.EnableBatching(b); err != nil {
		log.Fatal(err)
	}
	t0 = rt.Clock().Now()
	var (
		worstMu sync.Mutex
		worst   time.Duration
	)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := b.Client(fmt.Sprintf("nvme%d", ci))
			for r := 0; r < perClient; r++ {
				p, err := pred.SubmitBatched(c, [][]float32{feature(ci, r)})
				if err != nil {
					log.Fatal(err)
				}
				if _, err := linnos.WaitSlow(p); err != nil {
					log.Fatal(err)
				}
				worstMu.Lock()
				if l := p.Latency(); l > worst {
					worst = l
				}
				worstMu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	batched := rt.Clock().Now() - t0
	st := b.Stats()
	fmt.Printf("cross-client batched: %v virtual time (%.0f req/s)\n\n",
		batched, float64(clients*perClient)/batched.Seconds())
	fmt.Printf("speedup: %.1fx\n", unbatched.Seconds()/batched.Seconds())
	fmt.Printf("flushes: %d (avg batch %.1f items; %d full, %d deadline; %d GPU, %d CPU)\n",
		st.Flushes, st.AvgBatch(), st.FullFlushes, st.DeadlineFlushes, st.GPUFlushes, st.CPUFlushes)
	fmt.Printf("worst queue delay %v (deadline %v), worst end-to-end latency %v\n",
		st.MaxQueueDelay, maxWait, worst)
	if st.Rejected > 0 {
		fmt.Printf("backpressure rejections: %d\n", st.Rejected)
	}
}
