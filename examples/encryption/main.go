// encryption mounts the simulated AES-GCM eCryptfs (§7.7) with each cipher
// engine, writes and reads real encrypted data (verifying integrity), and
// prints the modeled throughput curves that reproduce Fig 14's shape.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"lakego/internal/ecryptfs"
)

func main() {
	data := make([]byte, 4<<20)
	rand.New(rand.NewSource(1)).Read(data)

	fmt.Println("write+read 4 MiB through each engine (real AES-GCM, modeled time):")
	for _, e := range ecryptfs.Engines() {
		fs, err := ecryptfs.NewFS(e, nil, 64<<10, "example-passphrase")
		if err != nil {
			log.Fatal(err)
		}
		wT, err := fs.Write("data.bin", data)
		if err != nil {
			log.Fatal(err)
		}
		got, rT, err := fs.Read("data.bin")
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			log.Fatal("round trip corrupted data")
		}
		fmt.Printf("  %-12s write %8v   read %8v\n", e, wT, rT)
	}

	// Authenticated encryption catches tampering with data at rest.
	fs, _ := ecryptfs.NewFS(ecryptfs.EngineLAKE, nil, 64<<10, "example-passphrase")
	fs.Write("tamper.bin", data[:1<<20])
	fs.Tamper("tamper.bin", 3, 17)
	if _, _, err := fs.Read("tamper.bin"); errors.Is(err, ecryptfs.ErrCorrupt) {
		fmt.Println("\ntampered ciphertext detected and rejected (AES-GCM authentication)")
	} else {
		log.Fatal("tampering went undetected")
	}

	m := ecryptfs.DefaultModel()
	fmt.Println("\nread throughput by block size (MB/s), Fig 14's curves:")
	fmt.Printf("%-8s %8s %8s %8s %12s\n", "block", "CPU", "AES-NI", "LAKE", "GPU+AES-NI")
	for _, s := range ecryptfs.Fig14BlockSizes() {
		fmt.Printf("%-8d %8.0f %8.0f %8.0f %12.0f\n", s/1024,
			m.Throughput(ecryptfs.EngineCPU, s, false)/1e6,
			m.Throughput(ecryptfs.EngineAESNI, s, false)/1e6,
			m.Throughput(ecryptfs.EngineLAKE, s, false)/1e6,
			m.Throughput(ecryptfs.EngineGPUAESNI, s, false)/1e6)
	}
	fmt.Println("\n(block column in KiB; LAKE passes AES-NI above 16 KiB and approaches ~840 MB/s)")
}
