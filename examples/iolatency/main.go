// iolatency runs the §7.1 end-to-end study in miniature: train a LinnOS
// latency classifier on profiled device behaviour, install it behind LAKE,
// replay the mixed trace workload against the three-device NVMe array, and
// compare average read latency across the kernel default, the CPU model and
// LAKE's policy-modulated execution.
package main

import (
	"fmt"
	"log"

	"lakego/internal/core"
	"lakego/internal/linnos"
	"lakego/internal/storage"
	"lakego/internal/trace"
)

func main() {
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// 1. Profile the device and label training data (LinnOS trains
	//    offline from observed latencies).
	fmt.Println("profiling devices and training the latency classifier...")
	reqs := trace.Azure().Rerate(3).Generate(7, 6000)
	samples, threshold := linnos.CollectSamples(storage.DefaultConfig("profiling", 7), reqs)
	net, acc, err := linnos.Train(linnos.Base, 7, samples, 3, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d samples, slow threshold %v, training accuracy %.1f%%\n",
		len(samples), threshold, acc*100)

	// 2. Install the model behind LAKE.
	pred, err := linnos.NewPredictor(rt, linnos.Base, net)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay the stressed mixed workload in all three configurations.
	w := linnos.MixedWorkload("Mixed+", 3000, 21, 3)
	fmt.Printf("\nreplaying %s (3 devices, %d I/Os each):\n", w.Name, 3000)
	base, err := linnos.Replay(rt, nil, w, linnos.DefaultReplayConfig(linnos.ModeBaseline))
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := linnos.Replay(rt, pred, w, linnos.DefaultReplayConfig(linnos.ModeCPU))
	if err != nil {
		log.Fatal(err)
	}
	lk, err := linnos.Replay(rt, pred, w, linnos.DefaultReplayConfig(linnos.ModeLAKE))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  %-22s avg read %8v   p95 %8v\n", "baseline (no reroute)", base.AvgRead, base.P95Read)
	fmt.Printf("  %-22s avg read %8v   p95 %8v   reissued %d\n", "LinnOS on CPU", cpu.AvgRead, cpu.P95Read, cpu.Reissued)
	fmt.Printf("  %-22s avg read %8v   p95 %8v   reissued %d (GPU batches %d, CPU inferences %d)\n",
		"LAKE (policy CPU/GPU)", lk.AvgRead, lk.P95Read, lk.Reissued, lk.GPUBatches, lk.CPUInferences)
	if cpu.AvgRead < base.AvgRead {
		fmt.Printf("\nML-driven reissue cut average read latency by %.0f%%\n",
			(1-float64(cpu.AvgRead)/float64(base.AvgRead))*100)
	}
}
