// Quickstart: boot a LAKE runtime and drive the full §4.1 workflow from
// "kernel space" — allocate copiable memory in lakeShm, remote CUDA driver
// calls through lakeLib over the Netlink channel to lakeD, launch a device
// kernel, and read the result back zero-copy.
package main

import (
	"fmt"
	"log"

	lake "lakego"
	"lakego/internal/cuda"
)

func main() {
	rt, err := lake.New(lake.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterKernel(lake.VecAddKernel())
	lib := rt.Lib()

	// API-remoted operations (§4.1): every call below serializes a command,
	// crosses the boundary, executes in lakeD against the CUDA API, and
	// returns its result the same way.
	ctx, r := lib.CuCtxCreate("quickstart")
	must(r, "cuCtxCreate")
	mod, r := lib.CuModuleLoad("kernels.cubin")
	must(r, "cuModuleLoad")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	must(r, "cuModuleGetFunction")

	// Copiable memory allocations (§4.1): buffers that will move to/from
	// the accelerator live in lakeShm, shared by both domains.
	const n = 8
	av := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	bv := []float32{10, 20, 30, 40, 50, 60, 70, 80}
	a, err := rt.Region().Alloc(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	b, err := rt.Region().Alloc(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	c, err := rt.Region().Alloc(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	cuda.PutFloat32s(a.Bytes(), av)
	cuda.PutFloat32s(b.Bytes(), bv)

	da, r := lib.CuMemAlloc(4 * n)
	must(r, "cuMemAlloc a")
	db, r := lib.CuMemAlloc(4 * n)
	must(r, "cuMemAlloc b")
	dc, r := lib.CuMemAlloc(4 * n)
	must(r, "cuMemAlloc c")

	must(lib.CuMemcpyHtoDShm(da, a, 4*n), "HtoD a")
	must(lib.CuMemcpyHtoDShm(db, b, 4*n), "HtoD b")
	must(lib.CuLaunchKernel(ctx, fn, []uint64{uint64(da), uint64(db), uint64(dc), n}), "launch vecadd")
	must(lib.CuMemcpyDtoHShm(c, dc, 4*n), "DtoH c")

	cv, err := cuda.Float32s(c.Bytes(), n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("a + b =", cv)

	st := rt.Stats()
	fmt.Printf("remoted %d calls over the %s channel in %v of modeled channel time\n",
		st.RemotedCalls, lake.Netlink, st.ChannelTime)
	fmt.Printf("device ran %d kernel(s); virtual time elapsed %v\n",
		st.KernelLaunches, st.VirtualTime)
}

func must(r lake.Result, what string) {
	if r != lake.Success {
		log.Fatalf("%s: %s", what, r)
	}
}
