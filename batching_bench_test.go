// BenchmarkBatchedInference quantifies the cross-client batching subsystem
// (internal/batcher): N concurrent LinnOS-style clients each classify a
// stream of I/O feature vectors, either remoting their own single-item
// batches (the pre-batcher status quo) or routing through the lakeD
// batcher, which coalesces the independent streams into dynamically formed
// GPU launches. Reported metrics are simulated: requests per virtual
// second for both modes, the batched/unbatched speedup, and p99
// enqueue-to-delivery latency.
package lake_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/boundary"
	"lakego/internal/core"
	"lakego/internal/linnos"
	"lakego/internal/nn"
	"lakego/internal/vtime"
)

const batchBenchPerClient = 64

// linnosFeature is the deterministic per-request input: client ci's r-th
// I/O. Both modes classify identical streams so results must be
// bit-identical.
func linnosFeature(ci, r int) []float32 {
	return linnos.FeatureVector((ci*31+r*7)%97, []time.Duration{
		time.Duration((ci+r)%11) * 200 * time.Microsecond,
		time.Duration(r%5) * 400 * time.Microsecond,
	})
}

type batchBenchRun struct {
	elapsed time.Duration   // total virtual time for all requests
	lats    []time.Duration // per-request virtual latency
	preds   []bool          // per-request prediction, indexed ci*perClient+r
}

func (r batchBenchRun) throughput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(len(r.lats)) / r.elapsed.Seconds()
}

func (r batchBenchRun) p99() time.Duration {
	if len(r.lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// benchConfig builds the benchmark runtime configuration; telemetry is on
// by default (the production shape) and disabled only by the overhead
// comparison runs.
func benchConfig(disableTelemetry bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.DisableTelemetry = disableTelemetry
	return cfg
}

// runUnbatchedLinnOS is the baseline: every client remotes its own
// single-request batches through its own predictor staging, as today's
// per-subsystem integration does.
func runUnbatchedLinnOS(tb testing.TB, clients, perClient int) batchBenchRun {
	tb.Helper()
	rt, err := core.New(benchConfig(false))
	if err != nil {
		tb.Fatal(err)
	}
	defer rt.Close()
	net := nn.New(3, linnos.Base.Sizes()...)
	preds := make([]*linnos.Predictor, clients)
	for i := range preds {
		if preds[i], err = linnos.NewPredictor(rt, linnos.Base, net); err != nil {
			tb.Fatal(err)
		}
	}
	run := batchBenchRun{
		lats:  make([]time.Duration, clients*perClient),
		preds: make([]bool, clients*perClient),
	}
	start := rt.Clock().Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				sw := vtime.StartStopwatch(rt.Clock())
				slow, _, err := preds[ci].InferLAKE([][]float32{linnosFeature(ci, r)}, true)
				if err != nil {
					errCh <- err
					return
				}
				run.lats[ci*perClient+r] = sw.Elapsed()
				run.preds[ci*perClient+r] = slow[0]
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		tb.Fatal(err)
	}
	run.elapsed = rt.Clock().Now() - start
	return run
}

// runBatchedLinnOS routes the same request streams through the batching
// subsystem and asserts the flush deadline was honored.
func runBatchedLinnOS(tb testing.TB, clients, perClient int) batchBenchRun {
	return runBatchedLinnOSCfg(tb, clients, perClient, benchConfig(false))
}

// runBatchedLinnOSCfg is runBatchedLinnOS on an explicit runtime
// configuration; the telemetry overhead comparisons flip DisableTelemetry.
func runBatchedLinnOSCfg(tb testing.TB, clients, perClient int, rcfg core.Config) batchBenchRun {
	tb.Helper()
	rt, err := core.New(rcfg)
	if err != nil {
		tb.Fatal(err)
	}
	defer rt.Close()
	pred, err := linnos.NewPredictor(rt, linnos.Base, nn.New(3, linnos.Base.Sizes()...))
	if err != nil {
		tb.Fatal(err)
	}
	cfg := batcher.DefaultConfig()
	cfg.MaxBatch = clients
	cfg.MaxWait = 200 * time.Microsecond
	cfg.Linger = 200 * time.Microsecond
	cfg.ClientDepth = 4
	b := rt.NewBatcher(cfg)
	if err := pred.EnableBatching(b); err != nil {
		tb.Fatal(err)
	}
	run := batchBenchRun{
		lats:  make([]time.Duration, clients*perClient),
		preds: make([]bool, clients*perClient),
	}
	start := rt.Clock().Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := b.Client(fmt.Sprintf("queue-%d", ci))
			for r := 0; r < perClient; r++ {
				p, err := pred.SubmitBatched(c, [][]float32{linnosFeature(ci, r)})
				if err != nil {
					errCh <- err
					return
				}
				slow, err := linnos.WaitSlow(p)
				if err != nil {
					errCh <- err
					return
				}
				run.lats[ci*perClient+r] = p.Latency()
				run.preds[ci*perClient+r] = slow[0]
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		tb.Fatal(err)
	}
	run.elapsed = rt.Clock().Now() - start
	if st := b.Stats(); st.MaxQueueDelay > cfg.MaxWait {
		tb.Fatalf("flush deadline violated: max queue delay %v > MaxWait %v (stats %+v)",
			st.MaxQueueDelay, cfg.MaxWait, st)
	}
	return run
}

func BenchmarkBatchedInference(b *testing.B) {
	for _, clients := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var batched, unbatched batchBenchRun
			for i := 0; i < b.N; i++ {
				unbatched = runUnbatchedLinnOS(b, clients, batchBenchPerClient)
				batched = runBatchedLinnOS(b, clients, batchBenchPerClient)
			}
			for i := range batched.preds {
				if batched.preds[i] != unbatched.preds[i] {
					b.Fatalf("request %d: batched prediction differs from unbatched", i)
				}
			}
			b.ReportMetric(batched.throughput(), "batched_req_per_s")
			b.ReportMetric(unbatched.throughput(), "unbatched_req_per_s")
			b.ReportMetric(batched.throughput()/unbatched.throughput(), "speedup")
			b.ReportMetric(float64(batched.p99().Microseconds()), "batched_p99_us")
			b.ReportMetric(float64(unbatched.p99().Microseconds()), "unbatched_p99_us")
		})
	}
}

// BenchmarkBatchedInferenceRing pits the batched workload on the
// descriptor-ring transport against the same workload on the legacy channel
// transport: identical streams, bit-identical predictions, the ring's
// cheaper boundary crossings raising the throughput ceiling.
func BenchmarkBatchedInferenceRing(b *testing.B) {
	const clients = 32
	ringCfg := benchConfig(false)
	ringCfg.Channel = boundary.Ring
	var ring, channel batchBenchRun
	for i := 0; i < b.N; i++ {
		channel = runBatchedLinnOSCfg(b, clients, batchBenchPerClient, benchConfig(false))
		ring = runBatchedLinnOSCfg(b, clients, batchBenchPerClient, ringCfg)
	}
	for i := range ring.preds {
		if ring.preds[i] != channel.preds[i] {
			b.Fatalf("request %d: ring prediction differs from channel transport", i)
		}
	}
	b.ReportMetric(ring.throughput(), "ring_req_per_s")
	b.ReportMetric(channel.throughput(), "channel_req_per_s")
	b.ReportMetric(ring.throughput()/channel.throughput(), "speedup")
	b.ReportMetric(float64(ring.p99().Microseconds()), "ring_p99_us")
}

// BenchmarkBatchedInferenceTelemetry pits the same batched workload with
// the observability plane enabled (the default) against a runtime booted
// with DisableTelemetry, so benchdiff and the CI gate can watch the
// instrumentation's hot-path cost directly. The acceptance bound (<5%
// wall-clock overhead) is enforced by TestTelemetryOverhead.
func BenchmarkBatchedInferenceTelemetry(b *testing.B) {
	const clients = 32
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"enabled", false}, {"disabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var run batchBenchRun
			for i := 0; i < b.N; i++ {
				run = runBatchedLinnOSCfg(b, clients, batchBenchPerClient, benchConfig(mode.disable))
			}
			b.ReportMetric(run.throughput(), "req_per_vs")
		})
	}
}

// TestBatchedInferenceSpeedup pins the headline acceptance number: at 32
// concurrent LinnOS-style clients, cross-client batching must at least
// double throughput over unbatched remoting, with bit-identical
// predictions (the deadline bound is asserted inside runBatchedLinnOS).
func TestBatchedInferenceSpeedup(t *testing.T) {
	const clients = 32
	unbatched := runUnbatchedLinnOS(t, clients, batchBenchPerClient)
	batched := runBatchedLinnOS(t, clients, batchBenchPerClient)
	for i := range batched.preds {
		if batched.preds[i] != unbatched.preds[i] {
			t.Fatalf("request %d: batched prediction differs from unbatched", i)
		}
	}
	speedup := batched.throughput() / unbatched.throughput()
	t.Logf("unbatched %.0f req/s, batched %.0f req/s, speedup %.2fx, p99 %v vs %v",
		unbatched.throughput(), batched.throughput(), speedup, unbatched.p99(), batched.p99())
	if speedup < 2 {
		t.Fatalf("speedup %.2fx < 2x acceptance threshold", speedup)
	}
}
