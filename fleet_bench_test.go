// Fleet scaling and shard-kill chaos: the sharded multi-daemon fleet must
// scale LinnOS inference throughput near-linearly in shards — each shard
// is an independent lakeD process with its own virtual timeline, so the
// fleet's elapsed time is the slowest shard's (the critical path) — and a
// shard killed mid-storm must lose nothing: queued work completes on the
// CPU fallback, the journal migrates, tenants re-route, and the flight
// recorder can still reconstruct every surviving-shard call.
package lake_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	lake "lakego"
	"lakego/internal/flightrec"
	"lakego/internal/linnos"
	"lakego/internal/nn"
)

// fleetLinnOSModel builds the LinnOS Base network as a fleet-registerable
// batcher model, mirroring linnos.Predictor.EnableBatching: same widths,
// same calibrated CPU cost, same flops model, same forward pass — so fleet
// predictions are bit-identical to every other execution path.
func fleetLinnOSModel() (lake.BatcherModel, *nn.Network) {
	net := nn.New(3, linnos.Base.Sizes()...)
	return lake.BatcherModel{
		Name:       "linnos_fleet",
		InputWidth: linnos.InputWidth, OutputWidth: 2,
		MaxBatch:     linnos.MaxBatch,
		CPUPerItem:   linnos.Base.CPUInferCost(),
		FlopsPerItem: net.Flops(),
		Forward:      net.Forward,
	}, net
}

func fleetBenchConfig(shards int) lake.FleetConfig {
	return fleetBenchConfigOn(shards, lake.Netlink)
}

func fleetBenchConfigOn(shards int, ch lake.ChannelKind) lake.FleetConfig {
	rcfg := benchConfig(false)
	rcfg.Channel = ch
	rcfg.NumShards = shards
	rcfg.RouterPolicy = lake.PoolRoundRobin // deterministic balanced storm
	rcfg.RouterSeed = 42
	bcfg := lake.DefaultBatcherConfig()
	bcfg.MaxBatch = 32
	bcfg.MaxWait = 200 * time.Microsecond
	bcfg.Linger = 200 * time.Microsecond
	bcfg.ClientDepth = fleetPipeline
	return lake.FleetConfig{Runtime: rcfg, Batcher: bcfg}
}

// fleetPipeline is each tenant's submission-window depth. The storm is
// open-loop: like a LinnOS block-device queue under a burst, a tenant
// submits its whole request train before collecting, so per-shard queues
// never run dry and batch formation stays at MaxBatch even when sharding
// divides the tenant population — otherwise each deadline flush charges up
// to MaxWait of virtual idle time and the critical-path shard pays it.
const fleetPipeline = 64

// runFleetLinnOS drives a `clients`-tenant storm through a fleet of
// `shards` shards and reports elapsed critical-path virtual time, per-
// request latencies, and per-request predictions.
func runFleetLinnOS(tb testing.TB, shards, clients, perClient int) batchBenchRun {
	return runFleetLinnOSOn(tb, shards, clients, perClient, lake.Netlink)
}

// runFleetLinnOSOn is runFleetLinnOS with every shard on an explicit command
// channel.
func runFleetLinnOSOn(tb testing.TB, shards, clients, perClient int, ch lake.ChannelKind) batchBenchRun {
	tb.Helper()
	f, err := lake.NewFleet(fleetBenchConfigOn(shards, ch))
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	mc, _ := fleetLinnOSModel()
	if err := f.RegisterModel(mc); err != nil {
		tb.Fatal(err)
	}
	// Elapsed time is measured per shard from the post-boot mark, then
	// maximized: the fleet is done when its slowest shard is.
	starts := make([]time.Duration, len(f.Shards()))
	for i, s := range f.Shards() {
		starts[i] = s.Clock().Now()
	}
	run := batchBenchRun{
		lats:  make([]time.Duration, clients*perClient),
		preds: make([]bool, clients*perClient),
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := f.Client(fmt.Sprintf("tenant-%d", ci))
			type inflight struct {
				p *lake.FleetPending
				r int
			}
			var window []inflight
			collect := func(w inflight) error {
				out, err := w.p.Wait()
				if err != nil {
					return err
				}
				run.lats[ci*perClient+w.r] = w.p.Latency()
				run.preds[ci*perClient+w.r] = out[0][1] > out[0][0]
				return nil
			}
			for r := 0; r < perClient; r++ {
				p, err := c.Submit("linnos_fleet", [][]float32{linnosFeature(ci, r)})
				if err != nil {
					errCh <- err
					return
				}
				window = append(window, inflight{p, r})
				if len(window) == fleetPipeline {
					if err := collect(window[0]); err != nil {
						errCh <- err
						return
					}
					window = window[1:]
				}
			}
			for _, w := range window {
				if err := collect(w); err != nil {
					errCh <- err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		tb.Fatal(err)
	}
	for i, s := range f.Shards() {
		if d := s.Clock().Now() - starts[i]; d > run.elapsed {
			run.elapsed = d
		}
	}
	return run
}

// BenchmarkFleetScaling is the headline: a 256-client LinnOS storm against
// 1, 2 and 4 shards. Throughput is requests over critical-path virtual
// time; per-request predictions must be bit-identical at every shard
// count.
func BenchmarkFleetScaling(b *testing.B) {
	const clients, perClient = 256, 64
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var run, base batchBenchRun
			for i := 0; i < b.N; i++ {
				base = runFleetLinnOS(b, 1, clients, perClient)
				run = runFleetLinnOS(b, shards, clients, perClient)
			}
			for i := range run.preds {
				if run.preds[i] != base.preds[i] {
					b.Fatalf("request %d: prediction differs between 1 and %d shards", i, shards)
				}
			}
			b.ReportMetric(run.throughput(), "req_per_s")
			b.ReportMetric(run.throughput()/base.throughput(), "speedup")
			b.ReportMetric(float64(run.p99().Nanoseconds()), "p99_vns")
		})
	}
}

// BenchmarkFleetScalingRing is the fleet storm with every shard on the
// descriptor-ring transport: a 256-client LinnOS storm at 4 shards against
// its own 1-shard ring baseline. The ring's cheaper per-call boundary
// crossings raise the absolute throughput ceiling over BenchmarkFleetScaling
// while preserving bit-identical predictions.
func BenchmarkFleetScalingRing(b *testing.B) {
	const clients, perClient, shards = 256, 64, 4
	var run, base batchBenchRun
	for i := 0; i < b.N; i++ {
		base = runFleetLinnOSOn(b, 1, clients, perClient, lake.Ring)
		run = runFleetLinnOSOn(b, shards, clients, perClient, lake.Ring)
	}
	for i := range run.preds {
		if run.preds[i] != base.preds[i] {
			b.Fatalf("request %d: prediction differs between 1 and %d ring shards", i, shards)
		}
	}
	b.ReportMetric(run.throughput(), "req_per_s")
	b.ReportMetric(run.throughput()/base.throughput(), "speedup")
	b.ReportMetric(float64(run.p99().Nanoseconds()), "p99_vns")
}

// TestFleetScalingSpeedup gates the headline claim: >= 3x throughput at 4
// shards over 1 under the 256-client storm (mirrors
// TestPoolScalingSpeedup).
func TestFleetScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("storm benchmark in -short mode")
	}
	const clients, perClient = 256, 64
	one := runFleetLinnOS(t, 1, clients, perClient)
	four := runFleetLinnOS(t, 4, clients, perClient)
	for i := range four.preds {
		if four.preds[i] != one.preds[i] {
			t.Fatalf("request %d: prediction differs between 1 and 4 shards", i)
		}
	}
	speedup := four.throughput() / one.throughput()
	t.Logf("1 shard: %.0f req/s (elapsed %v)  4 shards: %.0f req/s (elapsed %v)  speedup %.2fx",
		one.throughput(), one.elapsed, four.throughput(), four.elapsed, speedup)
	if speedup < 3 {
		t.Fatalf("4-shard speedup %.2fx, want >= 3x", speedup)
	}
}

// TestChaosFleetShardKill kills one shard in the middle of a 64-tenant
// storm. The contract: zero lost calls (every Wait succeeds with the
// reference prediction), zero re-executed calls (no shard answers a
// redelivery, the migrated journal absorbs them), and the flight recorder
// reconstructs every surviving-shard call end to end.
func TestChaosFleetShardKill(t *testing.T) {
	runChaosFleetShardKill(t, lake.Netlink)
}

// TestChaosFleetShardKillRing is the same kill storm with every shard on the
// descriptor-ring transport: the victim's in-flight calls sit in ring slots
// when the kill lands, and the handoff must still seal the journal with zero
// lost and zero re-executed calls.
func TestChaosFleetShardKillRing(t *testing.T) {
	runChaosFleetShardKill(t, lake.Ring)
}

func runChaosFleetShardKill(t *testing.T, ch lake.ChannelKind) {
	const clients, perClient, victim = 64, 16, 2
	cfg := fleetBenchConfig(4)
	cfg.Runtime.Channel = ch
	cfg.Runtime.Faults = &lake.FaultMix{Seed: 21} // plane attached; the kill is manual
	f, err := lake.NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mc, net := fleetLinnOSModel()
	if err := f.RegisterModel(mc); err != nil {
		t.Fatal(err)
	}

	var delivered atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := f.Client(fmt.Sprintf("tenant-%d", ci))
			for r := 0; r < perClient; r++ {
				x := linnosFeature(ci, r)
				out, err := c.Infer("linnos_fleet", [][]float32{x})
				if err != nil {
					errCh <- fmt.Errorf("tenant %d req %d: %w", ci, r, err)
					return
				}
				ref := net.Forward(x)
				if (out[0][1] > out[0][0]) != (ref[1] > ref[0]) {
					errCh <- fmt.Errorf("tenant %d req %d: prediction diverged", ci, r)
					return
				}
				delivered.Add(1)
			}
		}(ci)
	}

	// Kill the victim once the storm is genuinely mid-flight.
	for delivered.Load() < clients*perClient/4 {
		time.Sleep(50 * time.Microsecond)
	}
	m, err := f.Kill(victim)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err) // a lost or corrupted call
	}

	if got := delivered.Load(); got != clients*perClient {
		t.Fatalf("delivered %d of %d requests", got, clients*perClient)
	}
	if got := f.Shard(victim).State(); got != lake.ShardDead {
		t.Fatalf("victim state %s, want Dead", got)
	}
	// Zero re-executed: no daemon served a redelivery by re-running it —
	// the migrated journal answers duplicates, and none arrived here.
	for _, sh := range f.Shards() {
		if r := sh.Runtime().Daemon().Redelivered(); r != 0 {
			t.Fatalf("shard %d redelivered %d commands", sh.Ordinal(), r)
		}
	}
	st := f.Stats()
	if st.Migrations != 1 {
		t.Fatalf("migrations=%d, want 1", st.Migrations)
	}
	t.Logf("kill: src=%d dst=%d journal=%d tenants=%d handoff=%dB reroutes=%d fallbackFlushes=%d",
		m.Src, m.Dst, m.JournalEntries, m.Tenants, m.HandoffBytes,
		st.Reroutes, f.Shard(victim).Batcher().Stats().FallbackFlushes)

	// Every surviving-shard call must be reconstructable by the laketrace
	// pipeline: dump the fleet recorder and stitch.
	dump := f.Recorder().TriggerDump("chaos-shard-kill")
	if dump == nil {
		t.Fatal("no flight-recorder dump")
	}
	res := flightrec.Stitch(dump)
	perShard := make(map[int]int)
	for _, tl := range res.Timelines {
		if tl.Shard == victim || !tl.Completed {
			continue
		}
		if !tl.Complete {
			t.Fatalf("surviving-shard call trace=%#x shard=%d not reconstructable: missing %v",
				tl.TraceID, tl.Shard, tl.Missing)
		}
		perShard[tl.Shard]++
	}
	for _, sh := range f.Shards() {
		if sh.Ordinal() == victim {
			continue
		}
		if perShard[sh.Ordinal()] == 0 {
			t.Fatalf("no reconstructed calls on surviving shard %d", sh.Ordinal())
		}
	}
}
