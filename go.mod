module lakego

go 1.22
