package lake_test

import (
	"testing"

	lake "lakego"
)

// The public facade must support the full quickstart flow without touching
// internal packages.
func TestPublicAPIQuickstart(t *testing.T) {
	rt, err := lake.New(lake.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterKernel(lake.VecAddKernel())

	lib := rt.Lib()
	ctx, r := lib.CuCtxCreate("quickstart")
	if r != lake.Success {
		t.Fatal(r)
	}
	mod, _ := lib.CuModuleLoad("kernels")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	if r != lake.Success {
		t.Fatal(r)
	}

	const n = 8
	a, err := rt.Region().Alloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*n; i++ {
		a.Bytes()[i] = 0 // zero vector: 0 + 0 = 0
	}
	ap, _ := lib.CuMemAlloc(4 * n)
	cp, _ := lib.CuMemAlloc(4 * n)
	lib.CuMemcpyHtoDShm(ap, a, 4*n)
	if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(ap), uint64(ap), uint64(cp), n}); r != lake.Success {
		t.Fatal(r)
	}

	pol := rt.NewAdaptivePolicy(lake.DefaultAdaptiveConfig())
	if got := pol.Decide(1024); got != lake.UseGPU && got != lake.UseCPU {
		t.Fatalf("policy decision %v invalid", got)
	}

	reg, err := rt.Features().CreateRegistry("sda1", "demo", lake.FeatureSchema{
		{Key: "pend_ios", Size: 8, Entries: 1},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg.BeginCapture(0)
	reg.CaptureFeatureIncr("pend_ios", 1)
	reg.CommitCapture(1)
	if got := len(reg.GetFeatures(lake.NullTS)); got != 1 {
		t.Fatalf("feature vectors = %d, want 1", got)
	}

	if st := rt.Stats(); st.RemotedCalls == 0 || st.KernelLaunches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublicFigure3Program(t *testing.T) {
	rt, err := lake.New(lake.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	vp, err := rt.InstallVMPolicy(lake.Figure3Program(40, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := vp.Decide(64); got != lake.UseGPU {
		t.Fatalf("idle bytecode policy = %v, want GPU", got)
	}
}
